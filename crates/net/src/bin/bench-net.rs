//! `bench-net` — repeatable data-path benchmarks for the real-process
//! runtime, written as machine-readable JSON.
//!
//! Three stages, all on loopback:
//!
//! 1. **Frame codec**: encode/decode a bulk `WriteShadow` frame in a
//!    tight loop, counting wall time and heap allocations through a
//!    counting global allocator — frames/s, MB/s, allocations per frame.
//! 2. **Large file**: a real cluster (1 namespace + 3 providers), one
//!    client writing then reading a multi-megabyte file; MB/s computed
//!    from the client's own per-op latency samples so discovery warmup
//!    does not pollute the figure.
//! 3. **Small files**: a create-write-close storm of tiny files;
//!    files/s plus p50/p95/p99 per op kind.
//! 4. **Storm**: C10K-style concurrency — thousands of raw-socket
//!    client sessions (one epoll poller, zero threads) each hammering
//!    one provider daemon with small `DirectWrite`/`ReadSeg` rounds.
//!    Lost frames are re-sent with a per-op timeout (the provider's
//!    reply cache makes resends idempotent), so the section can assert
//!    *zero dropped ops and zero hung sessions* at the end.
//!
//! Usage: `bench-net [--smoke] [--storm N] [--out PATH]
//! [--check-allocs BOUND] [--validate PATH]`
//!
//! `--smoke` shrinks the workload to CI size. `--storm N` overrides the
//! storm session count. `--check-allocs` exits
//! non-zero if the pooled encode path's steady-state allocations per
//! frame exceed the bound. `--validate` parses an existing results file
//! and applies the same shape/bound checks without running anything.

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use sorrento::api::FsScript;
use sorrento::costs::CostModel;
use sorrento::locator::LocationScheme;
use sorrento::swim::MembershipMode;
use sorrento::proto::Msg;
use sorrento::store::{SegMeta, WritePayload};
use sorrento::types::{PlacementPolicy, SegId};
use sorrento_json::Json;
use sorrento_net::config::{CtlConfig, DaemonConfig, PeerSpec, Role};
use sorrento_net::ctl;
use sorrento_net::daemon::{self, DaemonHandle};
use sorrento_net::frame::{self, Frame, StreamDecoder};
use sorrento_sim::NodeId;

/// Counts every heap allocation so the bench can report a per-frame
/// allocation figure for the codec loop (single-threaded at that point,
/// so the process-wide counter is exact).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const FRAME_PAYLOAD: usize = 64 * 1024;
const DEADLINE: Duration = Duration::from_secs(120);

// ---- codec-begin ----
// The pooled single-pass encode path. The "before" run (a worktree of
// the pre-optimization tree) patches this block to the legacy
// `encode_msg` copy-and-append path; see EXPERIMENTS.md.
use sorrento_net::pool::BufPool;

fn encode_frame_once(pool: &BufPool, sender: NodeId, msg: &Msg) -> usize {
    let mut buf = pool.check_out();
    frame::encode_msg_into(&mut buf, sender, msg);
    let n = buf.len();
    drop(std::sync::Arc::new(buf)); // model the mesh's shared queue item
    n
}
// ---- codec-end ----

/// Encode + decode loop over a bulk-data frame.
fn frame_bench(iters: u64) -> Json {
    let pool = BufPool::new();
    let sender = NodeId::from_index(7);
    let data: Vec<u8> = (0..FRAME_PAYLOAD).map(|i| (i * 31 % 251) as u8).collect();
    let msg = Msg::WriteShadow {
        req: 42,
        shadow: 9,
        offset: 0,
        payload: WritePayload::Real(data.into()),
        truncate: false,
    };
    // Warm the pool and the branch predictors outside the timed window.
    let mut frame_len = 0usize;
    for _ in 0..256 {
        frame_len = encode_frame_once(&pool, sender, &msg);
    }

    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let mut bytes = 0u64;
    for _ in 0..iters {
        bytes += encode_frame_once(&pool, sender, &msg) as u64;
    }
    let enc_secs = t0.elapsed().as_secs_f64();
    let enc_allocs = ALLOCS.load(Ordering::Relaxed) - a0;

    // Decode the same frame back out of a contiguous receive buffer.
    let wire = frame::encode_msg(sender, &msg);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..iters {
        let (from, _f) = frame::decode_frame(&wire).expect("bench frame decodes");
        assert_eq!(from, sender);
    }
    let dec_secs = t0.elapsed().as_secs_f64();
    let dec_allocs = ALLOCS.load(Ordering::Relaxed) - a0;

    Json::obj()
        .with("payload_bytes", FRAME_PAYLOAD as u64)
        .with("frame_bytes", frame_len as u64)
        .with("iters", iters)
        .with("encode_frames_per_s", iters as f64 / enc_secs)
        .with("encode_mb_per_s", bytes as f64 / (1 << 20) as f64 / enc_secs)
        .with("encode_allocs_per_frame", enc_allocs as f64 / iters as f64)
        .with("decode_frames_per_s", iters as f64 / dec_secs)
        .with("decode_allocs_per_frame", dec_allocs as f64 / iters as f64)
}

/// Boot 1 namespace + `providers` provider daemons on ephemeral ports.
/// The ctl config is built through `CtlConfig::parse` so this binary
/// also compiles against trees whose config predates the chunking knobs.
fn spawn_cluster(providers: usize, seed: u64) -> (Vec<DaemonHandle>, CtlConfig) {
    let n = providers + 1;
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let all_peers: Vec<PeerSpec> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| PeerSpec {
            id: NodeId::from_index(i),
            addr: l.local_addr().unwrap().to_string(),
            machine: i as u32,
        })
        .collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let cfg = DaemonConfig {
                node_id: NodeId::from_index(i),
                role: if i == 0 { Role::Namespace } else { Role::Provider },
                listen: all_peers[i].addr.clone(),
                data_dir: None,
                seed: 900 + i as u64,
                capacity: 4 << 30,
                machine: i as u32,
                rack: i as u32,
                costs: CostModel::fast_test(),
                chaos: Default::default(),
                metrics_interval_ms: None,
                shard: 0,
                ns_shards: 1,
                ns_map: Vec::new(),
                ns_checkpoint_batches: None,
                membership: MembershipMode::Heartbeat,
                location: LocationScheme::Ring,
                peers: all_peers
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| p.clone())
                    .collect(),
            };
            daemon::spawn_with_listener(cfg, listener).expect("spawn daemon")
        })
        .collect();
    let mut peers = Json::arr();
    for p in &all_peers {
        peers.push(
            Json::obj()
                .with("id", p.id.index() as u64)
                .with("addr", p.addr.as_str())
                .with("machine", p.machine as u64),
        );
    }
    let doc = Json::obj()
        .with("namespace", 0u64)
        .with("ctl_id", 1000u64)
        .with("seed", seed)
        .with("replication", 1u64)
        .with("costs", "fast_test")
        .with("write_chunk", 256u64 * 1024)
        .with("write_window", 4u64)
        .with("peers", peers);
    let cfg = CtlConfig::parse(&doc.encode()).expect("ctl config parses");
    (handles, cfg)
}

/// Sum of latency samples for one op kind, in seconds, plus the count.
fn lat_sum(stats: &sorrento::client::ClientStats, kind: &str) -> (f64, u64) {
    let mut secs = 0.0;
    let mut n = 0;
    for (k, d) in &stats.latencies {
        if *k == kind {
            secs += d.as_secs_f64();
            n += 1;
        }
    }
    (secs, n)
}

/// p50/p95/p99 over one op kind's latency samples, in microseconds.
fn percentiles(stats: &sorrento::client::ClientStats, kind: &str) -> Option<Json> {
    let mut ns: Vec<u64> = stats
        .latencies
        .iter()
        .filter(|(k, _)| *k == kind)
        .map(|(_, d)| d.as_nanos())
        .collect();
    if ns.is_empty() {
        return None;
    }
    ns.sort_unstable();
    let pick = |p: f64| ns[((ns.len() - 1) as f64 * p) as usize] as f64 / 1000.0;
    Some(
        Json::obj()
            .with("n", ns.len() as u64)
            .with("p50_us", pick(0.50))
            .with("p95_us", pick(0.95))
            .with("p99_us", pick(0.99)),
    )
}

/// Write then read one large file; MB/s from the client's op latencies.
fn large_file_bench(cfg: &CtlConfig, mb: u64) -> Json {
    let len = mb << 20;
    let data: Vec<u8> = (0..len as usize).map(|i| (i * 131 % 253) as u8).collect();

    let mut fs = FsScript::new();
    let h = fs.create("/bench-large").unwrap();
    fs.write(h, 0, data.clone()).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(cfg, fs.into_ops(), 3, DEADLINE).expect("large write script");
    assert_eq!(out.stats.failed_ops, 0, "large write failed: {:?}", out.stats.last_error);
    let (write_secs, _) = lat_sum(&out.stats, "write");
    let (close_secs, _) = lat_sum(&out.stats, "close");
    let write_stats = out.stats;

    let mut fs = FsScript::new();
    let h = fs.open("/bench-large", false).unwrap();
    fs.read(h, 0, len).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(cfg, fs.into_ops(), 3, DEADLINE).expect("large read script");
    assert_eq!(out.stats.failed_ops, 0, "large read failed: {:?}", out.stats.last_error);
    assert_eq!(
        out.stats.last_read.as_deref().map(|d| d.len()),
        Some(data.len()),
        "large read came back short"
    );
    assert_eq!(out.stats.last_read.as_deref(), Some(&data[..]), "large read corrupt");
    let (read_secs, _) = lat_sum(&out.stats, "read");

    let mut j = Json::obj()
        .with("bytes", len)
        .with("write_mb_per_s", mb as f64 / write_secs)
        .with("write_commit_mb_per_s", mb as f64 / (write_secs + close_secs))
        .with("read_mb_per_s", mb as f64 / read_secs);
    if let Some(p) = percentiles(&write_stats, "write") {
        j.set("write_latency", p);
    }
    j
}

/// Create-write-close storm of tiny files.
fn small_file_bench(cfg: &CtlConfig, files: u64) -> Json {
    let body: Vec<u8> = (0..2048).map(|i| (i % 251) as u8).collect();
    let mut fs = FsScript::new();
    for i in 0..files {
        let h = fs.create(format!("/bench-small-{i}")).unwrap();
        fs.write(h, 0, body.clone()).unwrap();
        fs.close(h).unwrap();
    }
    let out = ctl::run_script(cfg, fs.into_ops(), 3, DEADLINE).expect("small file script");
    assert_eq!(out.stats.failed_ops, 0, "small file storm failed: {:?}", out.stats.last_error);
    let total_secs: f64 = out.stats.latencies.iter().map(|(_, d)| d.as_secs_f64()).sum();
    let mut j = Json::obj()
        .with("files", files)
        .with("files_per_s", files as f64 / total_secs);
    for kind in ["create", "write", "close"] {
        if let Some(p) = percentiles(&out.stats, kind) {
            j.set(&format!("{kind}_latency"), p);
        }
    }
    j
}

// ------------------------------------------------------------- storm

/// What one storm session writes per round (create-ish small op).
const STORM_BODY: usize = 512;
/// Re-send the current request if unanswered this long (the transport
/// is lossy by design: a full daemon inbox silently drops frames).
const STORM_RESEND: Duration = Duration::from_secs(1);

/// Where a session is in its current round.
enum StormPhase {
    AwaitWriteR,
    AwaitReadR,
    Done,
}

struct StormSession {
    stream: std::net::TcpStream,
    dec: StreamDecoder,
    /// Encoded bytes of the current in-flight request, kept for resend.
    pending: Vec<u8>,
    /// Unwritten output (requests whose socket write hit `WouldBlock`).
    out: Vec<u8>,
    out_off: usize,
    id: NodeId,
    req: u64,
    round: u64,
    phase: StormPhase,
    last_send: Instant,
    resends: u64,
    want_write: bool,
}

fn storm_meta() -> SegMeta {
    SegMeta {
        replication: 1,
        alpha: 1.0,
        policy: PlacementPolicy::Random,
        synthetic: false,
        ec: None,
    }
}

impl StormSession {
    fn seg(&self, round: u64) -> SegId {
        SegId(((self.id.index() as u128) << 64) | round as u128)
    }

    fn push_req(&mut self, msg: &Msg) {
        self.pending = frame::encode_msg(self.id, msg);
        self.out.extend_from_slice(&self.pending);
        self.last_send = Instant::now();
    }

    fn start_round(&mut self, body: &[u8]) {
        self.req += 1;
        let msg = Msg::DirectWrite {
            req: self.req,
            seg: self.seg(self.round),
            offset: 0,
            payload: WritePayload::Real(body.to_vec().into()),
            meta: storm_meta(),
        };
        self.push_req(&msg);
        self.phase = StormPhase::AwaitWriteR;
    }

    fn start_read(&mut self) {
        self.req += 1;
        let msg = Msg::ReadSeg {
            req: self.req,
            seg: self.seg(self.round),
            offset: 0,
            len: STORM_BODY as u64,
            min_version: None,
            allow_redirect: false,
        };
        self.push_req(&msg);
        self.phase = StormPhase::AwaitReadR;
    }

    /// Handle one decoded reply frame; returns ops newly completed.
    fn on_msg(&mut self, msg: Msg, rounds: u64, body: &[u8]) -> u64 {
        match (&self.phase, msg) {
            (StormPhase::AwaitWriteR, Msg::DirectWriteR { req, result }) if req == self.req => {
                result.unwrap_or_else(|e| panic!("session {}: write failed: {e:?}", self.id.index()));
                self.start_read();
                1
            }
            (StormPhase::AwaitReadR, Msg::ReadSegR { req, reply }) if req == self.req => {
                match reply {
                    sorrento::proto::ReadReply::Data { len, data, .. } => {
                        assert_eq!(len, STORM_BODY as u64, "storm read came back short");
                        if let Some(d) = data {
                            assert_eq!(&d[..], body, "storm read corrupt");
                        }
                    }
                    other => panic!("session {}: read failed: {other:?}", self.id.index()),
                }
                self.round += 1;
                if self.round == rounds {
                    self.phase = StormPhase::Done;
                    self.pending.clear();
                } else {
                    self.start_round(body);
                }
                1
            }
            // Stale reply from a resent request: the op already moved on.
            _ => 0,
        }
    }
}

/// Connect with bounded backoff: a daemon mid-boot (or a briefly full
/// accept backlog at storm scale) refuses transiently.
fn storm_connect(addr: std::net::SocketAddr) -> std::net::TcpStream {
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut backoff = Duration::from_millis(5);
    loop {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                assert!(Instant::now() < deadline, "storm connect to {addr} failed: {e}");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(200));
            }
        }
    }
}

/// The C10K storm: `sessions` concurrent raw-socket clients against one
/// provider, every socket driven by a single epoll poller in this
/// thread — no thread per session on either side of the wire.
fn storm_bench(cfg: &CtlConfig, sessions: usize, rounds: u64) -> Json {
    use std::io::{Read, Write};
    let provider = NodeId::from_index(1);
    let addr = cfg
        .peers
        .iter()
        .find(|p| p.id == provider)
        .and_then(|p| std::net::ToSocketAddrs::to_socket_addrs(&p.addr.as_str()).ok()?.next())
        .expect("provider address");
    let body: Vec<u8> = (0..STORM_BODY).map(|i| (i * 37 % 241) as u8).collect();

    let mut poller = epoll::Poller::new().expect("storm poller");
    let mut all: Vec<StormSession> = Vec::with_capacity(sessions);
    let t0 = Instant::now();
    for i in 0..sessions {
        let mut stream = storm_connect(addr);
        let id = NodeId::from_index(10_000 + i);
        // No listen address: replies must come back over this socket.
        stream.write_all(&frame::encode_hello(id, "")).expect("hello");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_nonblocking(true).expect("nonblocking");
        let mut s = StormSession {
            stream,
            dec: StreamDecoder::new(),
            pending: Vec::new(),
            out: Vec::new(),
            out_off: 0,
            id,
            req: 0,
            round: 0,
            phase: StormPhase::AwaitWriteR,
            last_send: Instant::now(),
            resends: 0,
            want_write: false,
        };
        s.start_round(&body);
        use std::os::fd::AsRawFd;
        poller
            .add(s.stream.as_raw_fd(), i as epoll::Token, epoll::Interest::BOTH)
            .expect("register session");
        all.push(s);
    }

    let expected_ops = sessions as u64 * rounds * 2;
    let mut completed = 0u64;
    let mut done_sessions = 0usize;
    let deadline = Instant::now() + DEADLINE;
    let mut events: Vec<epoll::Event> = Vec::new();
    while done_sessions < sessions {
        assert!(
            Instant::now() < deadline,
            "storm hung: {}/{} sessions done, {}/{} ops",
            done_sessions,
            sessions,
            completed,
            expected_ops
        );
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("storm wait");
        for ev in &events {
            let i = ev.token as usize;
            let was_done = matches!(all[i].phase, StormPhase::Done);
            if ev.writable || ev.error {
                // Flush buffered requests.
                let s = &mut all[i];
                while s.out_off < s.out.len() {
                    match s.stream.write(&s.out[s.out_off..]) {
                        Ok(n) => s.out_off += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => panic!("session {i}: write error: {e}"),
                    }
                }
                if s.out_off == s.out.len() {
                    s.out.clear();
                    s.out_off = 0;
                }
            }
            if ev.readable || ev.error {
                loop {
                    let s = &mut all[i];
                    let spare = s.dec.spare();
                    assert!(!spare.is_empty(), "session {i}: decoder poisoned");
                    match s.stream.read(spare) {
                        Ok(0) => panic!("session {i}: daemon closed the connection"),
                        Ok(n) => {
                            if let Some((from, Frame::Msg(msg))) =
                                s.dec.advance(n).expect("session decode")
                            {
                                assert_eq!(from, provider);
                                completed += s.on_msg(msg, rounds, &body);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => panic!("session {i}: read error: {e}"),
                    }
                }
            }
            let s = &mut all[i];
            if !was_done && matches!(s.phase, StormPhase::Done) {
                done_sessions += 1;
            }
            // Keep EPOLLOUT only while there is buffered output.
            let want = !s.out.is_empty();
            if want != s.want_write {
                s.want_write = want;
                use std::os::fd::AsRawFd;
                let interest = if want { epoll::Interest::BOTH } else { epoll::Interest::READABLE };
                poller.modify(s.stream.as_raw_fd(), ev.token, interest).expect("rearm");
            }
        }
        // Per-op resend sweep: anything unanswered past the timeout is
        // re-sent (idempotent thanks to the provider's reply cache).
        let now = Instant::now();
        for (i, s) in all.iter_mut().enumerate() {
            if matches!(s.phase, StormPhase::Done) || s.pending.is_empty() {
                continue;
            }
            if now.duration_since(s.last_send) >= STORM_RESEND {
                let retry = s.pending.clone();
                s.out.extend_from_slice(&retry);
                s.last_send = now;
                s.resends += 1;
                // Try to flush immediately; leftovers rearm EPOLLOUT.
                while s.out_off < s.out.len() {
                    match s.stream.write(&s.out[s.out_off..]) {
                        Ok(n) => s.out_off += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => panic!("session {i}: resend write error: {e}"),
                    }
                }
                if s.out_off == s.out.len() {
                    s.out.clear();
                    s.out_off = 0;
                } else if !s.want_write {
                    s.want_write = true;
                    use std::os::fd::AsRawFd;
                    poller
                        .modify(s.stream.as_raw_fd(), i as epoll::Token, epoll::Interest::BOTH)
                        .expect("rearm after resend");
                }
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let resends: u64 = all.iter().map(|s| s.resends).sum();

    // With every session still connected, ask the daemon how many live
    // connections its event loop holds (the `net_conns` gauge).
    let daemon_conns = ctl::fetch_stats(cfg, provider, Duration::from_secs(20))
        .ok()
        .and_then(|json| {
            Json::parse(&json).ok()?.get("gauges")?.get("net_conns")?.as_f64()
        })
        .unwrap_or(-1.0);

    assert_eq!(completed, expected_ops, "storm dropped ops");
    Json::obj()
        .with("sessions", sessions as u64)
        .with("rounds_per_session", rounds)
        .with("expected_ops", expected_ops)
        .with("completed_ops", completed)
        .with("hung_sessions", (sessions - done_sessions) as u64)
        .with("resends", resends)
        .with("elapsed_s", elapsed)
        .with("ops_per_s", completed as f64 / elapsed)
        .with("daemon_conns", daemon_conns)
}

/// Shape + bound checks shared by `--check-allocs` and `--validate`.
fn validate(doc: &Json, bound: Option<f64>) -> Result<(), String> {
    let section = |name: &str| -> Result<&Json, String> {
        doc.get(name).ok_or_else(|| format!("missing `{name}` section"))
    };
    // Either a single run, or a {before, after} pair; the bound only
    // applies to the optimized side.
    let runs: Vec<(&str, &Json)> = if doc.get("after").is_some() {
        vec![("before", section("before")?), ("after", section("after")?)]
    } else {
        vec![("run", doc)]
    };
    for (label, run) in &runs {
        for sec in ["frame", "large_file", "small_files"] {
            let s = run
                .get(sec)
                .ok_or_else(|| format!("`{label}` missing `{sec}` section"))?;
            let nonempty = s.as_obj().map(|o| !o.is_empty()).unwrap_or(false);
            if !nonempty {
                return Err(format!("`{label}.{sec}` is not a populated object"));
            }
        }
        for key in ["write_mb_per_s", "read_mb_per_s"] {
            let v = run.get("large_file").and_then(|s| s.get(key)).and_then(Json::as_f64);
            match v {
                Some(x) if x.is_finite() && x > 0.0 => {}
                _ => return Err(format!("`{label}.large_file.{key}` is not a positive number")),
            }
        }
    }
    // The current generation must prove the event loop held its storm:
    // the last (optimized) run carries a `storm` section with zero hung
    // sessions and zero dropped ops.
    {
        let (label, run) = runs.last().expect("at least one run");
        let storm = run.get("storm").ok_or_else(|| format!("`{label}` missing `storm` section"))?;
        let num = |k: &str| {
            storm
                .get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("`{label}.storm.{k}` missing"))
        };
        if num("sessions")? < 1.0 {
            return Err(format!("`{label}.storm.sessions` is empty"));
        }
        if num("hung_sessions")? != 0.0 {
            return Err(format!("`{label}.storm` reports hung sessions"));
        }
        if num("completed_ops")? != num("expected_ops")? {
            return Err(format!("`{label}.storm` dropped ops"));
        }
        match num("ops_per_s")? {
            x if x.is_finite() && x > 0.0 => {}
            x => return Err(format!("`{label}.storm.ops_per_s` = {x} is not positive")),
        }
    }
    // A before/after pair is a perf claim: small files must have won
    // back parity and the large-transfer wins must have held (within
    // 10%). Both runs in a committed pair come from the same machine,
    // so these are stable, static checks.
    if runs.len() == 2 {
        let get = |run: &Json, sec: &str, key: &str| -> Result<f64, String> {
            run.get(sec)
                .and_then(|s| s.get(key))
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing `{sec}.{key}` in before/after pair"))
        };
        let (before, after) = (runs[0].1, runs[1].1);
        let ratio = get(after, "small_files", "files_per_s")?
            / get(before, "small_files", "files_per_s")?;
        if ratio < 1.0 {
            return Err(format!("small_file_ratio {ratio:.3} < 1.0: small files regressed"));
        }
        for key in ["write_mb_per_s", "read_mb_per_s"] {
            let b = get(before, "large_file", key)?;
            let a = get(after, "large_file", key)?;
            if a < 0.9 * b {
                return Err(format!(
                    "large_file.{key} regressed: {a:.1} vs {b:.1} (allowed within 10%)"
                ));
            }
        }
    }
    if let Some(bound) = bound {
        let run = runs.last().expect("at least one run").1;
        let allocs = run
            .get("frame")
            .and_then(|f| f.get("encode_allocs_per_frame"))
            .and_then(Json::as_f64)
            .ok_or("missing frame.encode_allocs_per_frame")?;
        if allocs > bound {
            return Err(format!(
                "encode allocations per frame regressed: {allocs:.3} > bound {bound}"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let check_allocs: Option<f64> = flag_value("--check-allocs").map(|v| {
        v.parse().unwrap_or_else(|_| panic!("--check-allocs takes a number, got {v}"))
    });

    if let Some(path) = flag_value("--validate") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-net: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("bench-net: {path} is not valid JSON: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        return match validate(&doc, check_allocs) {
            Ok(()) => {
                println!("bench-net: {path} OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench-net: {path} invalid: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let out_path = flag_value("--out").unwrap_or_else(|| "results/BENCH_net.json".into());
    let (frame_iters, large_mb, small_files, storm_default, storm_rounds) =
        if smoke { (2_000, 4, 20, 256, 4) } else { (20_000, 32, 200, 2_000, 5) };
    let storm_sessions: usize = flag_value("--storm")
        .map(|v| v.parse().unwrap_or_else(|_| panic!("--storm takes a number, got {v}")))
        .unwrap_or(storm_default)
        .max(1);

    eprintln!("bench-net: frame codec ({frame_iters} iters)...");
    let frame = frame_bench(frame_iters);

    eprintln!("bench-net: booting loopback cluster...");
    let (handles, cfg) = spawn_cluster(3, 21);
    eprintln!("bench-net: large file ({large_mb} MiB)...");
    let large = large_file_bench(&cfg, large_mb);
    let mut cfg_small = cfg.clone();
    cfg_small.seed = 22; // fresh client seed: avoid segment-id collisions
    eprintln!("bench-net: small files ({small_files})...");
    let small = small_file_bench(&cfg_small, small_files);
    eprintln!("bench-net: storm ({storm_sessions} sessions x {storm_rounds} rounds)...");
    let storm = storm_bench(&cfg, storm_sessions, storm_rounds);
    for h in handles {
        h.stop().expect("clean daemon shutdown");
    }

    let doc = Json::obj()
        .with("bench", "net data path")
        .with("mode", if smoke { "smoke" } else { "full" })
        .with("frame", frame)
        .with("large_file", large)
        .with("small_files", small)
        .with("storm", storm);

    if let Err(e) = validate(&doc, check_allocs) {
        eprintln!("bench-net: FAILED: {e}");
        eprintln!("{}", doc.encode_pretty());
        return ExitCode::FAILURE;
    }
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, doc.encode_pretty()).expect("write results");
    println!("{}", doc.encode_pretty());
    eprintln!("bench-net: wrote {out_path}");
    ExitCode::SUCCESS
}
