//! The Sorrento node daemon binary.
//!
//! ```text
//! sorrento-node <config.json>
//! ```
//!
//! Runs one namespace server or storage provider (chosen by the
//! config's `role`) until the process is killed or `quit` is typed on
//! stdin. Type `quit` for a clean shutdown: a provider then persists
//! every dirty segment and checkpoints its database before exiting
//! (segments are also persisted continuously, so a hard kill loses at
//! most the last couple hundred milliseconds of writes).

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sorrento_net::config::{DaemonConfig, Role};
use sorrento_net::daemon;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.as_slice() {
        [p] if p != "-h" && p != "--help" => p.clone(),
        _ => {
            eprintln!("usage: sorrento-node <config.json>");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sorrento-node: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match DaemonConfig::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sorrento-node: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let role = match cfg.role {
        Role::Namespace => "namespace",
        Role::Provider => "provider",
    };
    eprintln!(
        "sorrento-node: node {} ({role}) listening on {} ({} peers); type `quit` to stop",
        cfg.node_id.index(),
        cfg.listen,
        cfg.peers.len()
    );

    // `quit` on stdin requests a clean shutdown; EOF (e.g. started with
    // stdin from /dev/null) just parks the watcher.
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let _ = std::thread::Builder::new()
        .name("stdin-watcher".into())
        .spawn(move || {
            for line in std::io::stdin().lock().lines() {
                match line {
                    Ok(l) if l.trim() == "quit" => {
                        flag.store(true, Ordering::SeqCst);
                        return;
                    }
                    Ok(_) => {}
                    Err(_) => return,
                }
            }
        });

    match daemon::run(cfg, shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sorrento-node: {e}");
            ExitCode::FAILURE
        }
    }
}
