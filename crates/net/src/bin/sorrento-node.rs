//! The Sorrento node daemon binary.
//!
//! ```text
//! sorrento-node <config.json> [--crash-after <secs>]
//! ```
//!
//! Runs one namespace server or storage provider (chosen by the
//! config's `role`) until stopped. Three ways out:
//!
//! * **`quit` on stdin or SIGTERM** — clean shutdown: a provider
//!   persists every dirty segment and checkpoints its database before
//!   exiting (segments are also persisted continuously, so even a hard
//!   kill loses at most the last couple hundred milliseconds of
//!   writes).
//! * **SIGKILL / power loss** — nothing runs; recovery relies entirely
//!   on the continuous persistence sweeps.
//! * **`--crash-after <secs>`** — test hook for recovery drills: the
//!   process aborts (no clean shutdown, no final persistence) after the
//!   given number of seconds, standing in for a SIGKILL that scripts
//!   can schedule deterministically.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sorrento_net::config::{DaemonConfig, Role};
use sorrento_net::{daemon, flight};

/// Set by the SIGTERM handler; polled by the daemon loop via the shared
/// shutdown flag bridge below. Signal handlers may only do
/// async-signal-safe work, which a relaxed atomic store is.
static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    // Raw libc signal(2) via the C ABI: the toolchain has no libc crate
    // vendored, and one handler registration does not justify one.
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigterm(_sig: i32) {
        SIGTERM_SEEN.store(true, Ordering::Relaxed);
    }
    let handler = on_sigterm as extern "C" fn(i32);
    unsafe {
        signal(SIGTERM, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn usage() -> ExitCode {
    eprintln!("usage: sorrento-node <config.json> [--crash-after <secs>]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut crash_after: Option<u64> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return usage(),
            "--crash-after" => match it.next().and_then(|s| s.parse().ok()) {
                Some(secs) => crash_after = Some(secs),
                None => return usage(),
            },
            _ if path.is_none() => path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sorrento-node: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match DaemonConfig::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sorrento-node: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let role = match cfg.role {
        Role::Namespace => "namespace",
        Role::Standby => "standby",
        Role::Provider => "provider",
    };
    eprintln!(
        "sorrento-node: node {} ({role}) listening on {} ({} peers); type `quit` or send SIGTERM to stop",
        cfg.node_id.index(),
        cfg.listen,
        cfg.peers.len()
    );

    install_sigterm_handler();

    // The flight recorder is the black box: make sure it reaches disk
    // even when the process dies screaming. The daemon loop registers
    // its recorder with the global flight registry; a panic anywhere
    // dumps it before unwinding kills the process.
    let default_panic = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let n = flight::dump_all();
        if n > 0 {
            eprintln!("sorrento-node: dumped {n} flight recording(s) on panic");
        }
        default_panic(info);
    }));

    let shutdown = Arc::new(AtomicBool::new(false));

    // `quit` on stdin requests a clean shutdown; EOF (e.g. started with
    // stdin from /dev/null) just parks the watcher.
    let flag = Arc::clone(&shutdown);
    let _ = std::thread::Builder::new()
        .name("stdin-watcher".into())
        .spawn(move || {
            for line in std::io::stdin().lock().lines() {
                match line {
                    Ok(l) if l.trim() == "quit" => {
                        flag.store(true, Ordering::SeqCst);
                        return;
                    }
                    Ok(_) => {}
                    Err(_) => return,
                }
            }
        });

    // Bridge SIGTERM into the shared shutdown flag so the daemon loop
    // exits through its clean path (final persist + checkpoint).
    let flag = Arc::clone(&shutdown);
    let _ = std::thread::Builder::new()
        .name("signal-watcher".into())
        .spawn(move || loop {
            if SIGTERM_SEEN.load(Ordering::Relaxed) {
                flag.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });

    // Crash drill: abort abruptly — no clean shutdown path runs, so
    // on-disk state is whatever the continuous persistence captured.
    if let Some(secs) = crash_after {
        let _ = std::thread::Builder::new()
            .name("crash-timer".into())
            .spawn(move || {
                std::thread::sleep(Duration::from_secs(secs));
                eprintln!("sorrento-node: --crash-after {secs} elapsed; aborting");
                // abort() runs no destructors, so flush the black box by
                // hand — the drill should leave evidence, like a real
                // crash with the panic hook would.
                let _ = flight::dump_all();
                std::process::abort();
            });
    }

    match daemon::run(cfg, shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sorrento-node: {e}");
            ExitCode::FAILURE
        }
    }
}
