//! Command-line client for a live Sorrento cluster.
//!
//! ```text
//! sorrentoctl --config <cluster.json> create <path>
//! sorrentoctl --config <cluster.json> write  <path> <local-file>
//! sorrentoctl --config <cluster.json> read   <path> [offset [len]]
//! sorrentoctl --config <cluster.json> stat   <path>
//! sorrentoctl --config <cluster.json> ls     <path>
//! sorrentoctl --config <cluster.json> rm     <path>
//! sorrentoctl --config <cluster.json> mkdir  <path>
//! sorrentoctl --config <cluster.json> stats  <node-id>
//! sorrentoctl --config <cluster.json> chaos  <node-id> off
//! sorrentoctl --config <cluster.json> chaos  <node-id> <seed> <drop‰> [dup‰ [delay‰ <delay-µs>]]
//! ```
//!
//! Every file command compiles an [`FsScript`] program and runs it
//! through the same `SorrentoClient` state machine the simulator uses,
//! over TCP. `read` with no explicit length stats the file first and
//! reads to EOF. `stats` fetches a daemon's metrics registry as JSON.
//! `chaos` installs (or, with `off`, clears) deterministic
//! fault-injection rules on one daemon's mesh — the game-day tool; see
//! RUNBOOK.md. Rules shape the frames that daemon *sends*.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use sorrento::api::FsScript;
use sorrento::client::ClientOp;
use sorrento_net::chaos::ChaosConfig;
use sorrento_net::config::CtlConfig;
use sorrento_net::ctl::{self, OpRecord, ScriptOutcome};
use sorrento_sim::NodeId;

/// Wall-clock budget for one command, discovery included.
const DEADLINE: Duration = Duration::from_secs(30);
const USAGE: &str = "usage: sorrentoctl --config <cluster.json> \
    <create|write|read|stat|ls|rm|mkdir|stats|chaos> [args]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sorrentoctl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = std::env::args().skip(1);
    let mut config_path: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        if a == "--config" || a == "-c" {
            config_path = Some(args.next().ok_or("--config needs a value")?);
        } else {
            rest.push(a);
        }
    }
    let config_path = config_path.ok_or(USAGE)?;
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let cfg = CtlConfig::parse(&text).map_err(|e| format!("{config_path}: {e}"))?;

    let (cmd, cmd_args) = rest.split_first().ok_or(USAGE)?;
    match (cmd.as_str(), cmd_args) {
        ("create", [path]) => {
            let mut fs = FsScript::new();
            let h = fs.create(path).map_err(|e| e.to_string())?;
            fs.close(h).map_err(|e| e.to_string())?;
            report(run_fs(&cfg, fs)?)
        }
        ("write", [path, local]) => {
            let data =
                std::fs::read(local).map_err(|e| format!("cannot read {local}: {e}"))?;
            let n = data.len();
            let mut fs = FsScript::new();
            let h = fs.create(path).map_err(|e| e.to_string())?;
            fs.write(h, 0, data).map_err(|e| e.to_string())?;
            fs.close(h).map_err(|e| e.to_string())?;
            let code = report(run_fs(&cfg, fs)?)?;
            if code == ExitCode::SUCCESS {
                eprintln!("wrote {n} bytes to {path}");
            }
            Ok(code)
        }
        ("read", [path, tail @ ..]) if tail.len() <= 2 => {
            let offset: u64 = match tail.first() {
                Some(s) => s.parse().map_err(|_| "offset must be a number")?,
                None => 0,
            };
            let len: u64 = match tail.get(1) {
                Some(s) => s.parse().map_err(|_| "len must be a number")?,
                None => {
                    // No explicit length: stat first, read to EOF.
                    let mut fs = FsScript::new();
                    fs.stat(path).map_err(|e| e.to_string())?;
                    let out = run_fs(&cfg, fs)?;
                    if out.stats.failed_ops > 0 {
                        return report(out);
                    }
                    let size = out.records.first().map_or(0, |r| r.bytes);
                    size.saturating_sub(offset)
                }
            };
            let mut fs = FsScript::new();
            let h = fs.open(path, false).map_err(|e| e.to_string())?;
            if len > 0 {
                fs.read(h, offset, len).map_err(|e| e.to_string())?;
            }
            fs.close(h).map_err(|e| e.to_string())?;
            let out = run_fs(&cfg, fs)?;
            if out.stats.failed_ops == 0 {
                if let Some(data) = out.records.iter().find_map(|r| {
                    (r.kind == "read").then(|| r.data.clone()).flatten()
                }) {
                    std::io::stdout()
                        .write_all(&data)
                        .map_err(|e| e.to_string())?;
                }
            }
            report(out)
        }
        ("stat", [path]) => {
            let mut fs = FsScript::new();
            fs.stat(path).map_err(|e| e.to_string())?;
            let out = run_fs(&cfg, fs)?;
            if out.stats.failed_ops == 0 {
                println!("{path}: {} bytes", out.records.first().map_or(0, |r| r.bytes));
            }
            report(out)
        }
        ("ls", [path]) => {
            let mut fs = FsScript::new();
            fs.list(path).map_err(|e| e.to_string())?;
            let out = run_fs(&cfg, fs)?;
            if out.stats.failed_ops == 0 {
                if let Some(Some(blob)) = out.records.first().map(|r| r.data.clone()) {
                    println!("{}", String::from_utf8_lossy(&blob));
                }
            }
            report(out)
        }
        ("rm", [path]) => {
            let mut fs = FsScript::new();
            fs.unlink(path).map_err(|e| e.to_string())?;
            report(run_fs(&cfg, fs)?)
        }
        ("mkdir", [path]) => {
            let mut fs = FsScript::new();
            fs.mkdir(path).map_err(|e| e.to_string())?;
            report(run_fs(&cfg, fs)?)
        }
        ("stats", [node]) => {
            let id: usize = node.parse().map_err(|_| "stats takes a node id")?;
            let json = ctl::fetch_stats(&cfg, NodeId::from_index(id), DEADLINE)
                .map_err(|e| e.to_string())?;
            println!("{json}");
            Ok(ExitCode::SUCCESS)
        }
        ("chaos", [node, rule @ ..]) if !rule.is_empty() => {
            let id: usize = node.parse().map_err(|_| "chaos takes a node id first")?;
            let chaos = if rule == ["off"] {
                ChaosConfig::default() // all-zero rules clear injection
            } else {
                let num = |i: usize, what: &str| -> Result<u64, String> {
                    match rule.get(i) {
                        None => Ok(0),
                        Some(s) => s.parse().map_err(|_| format!("{what} must be a number")),
                    }
                };
                ChaosConfig {
                    seed: num(0, "seed")?,
                    drop_permille: num(1, "drop permille")? as u32,
                    dup_permille: num(2, "dup permille")? as u32,
                    delay_permille: num(3, "delay permille")? as u32,
                    delay: Duration::from_micros(num(4, "delay microseconds")?),
                    partition: Vec::new(),
                }
            };
            ctl::set_chaos(&cfg, NodeId::from_index(id), &chaos, DEADLINE)
                .map_err(|e| e.to_string())?;
            if chaos.is_active() {
                eprintln!(
                    "chaos on n{id}: seed {} drop {}‰ dup {}‰ delay {}‰×{:?}",
                    chaos.seed, chaos.drop_permille, chaos.dup_permille,
                    chaos.delay_permille, chaos.delay
                );
            } else {
                eprintln!("chaos off on n{id}");
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(USAGE.into()),
    }
}

fn run_fs(cfg: &CtlConfig, fs: FsScript) -> Result<ScriptOutcome, String> {
    let ops = fs.into_ops();
    // Writes need enough providers discovered to place `replication`
    // replicas; metadata-only programs can start as soon as one
    // provider is known (the namespace server answers those).
    let writes = ops.iter().any(|op| {
        matches!(
            op,
            ClientOp::Create { .. }
                | ClientOp::CreateWith { .. }
                | ClientOp::Write { .. }
                | ClientOp::Append { .. }
                | ClientOp::AtomicAppend { .. }
        )
    });
    let min_providers = if writes { cfg.replication as usize } else { 1 };
    ctl::run_script(cfg, ops, min_providers, DEADLINE).map_err(|e| e.to_string())
}

fn report(out: ScriptOutcome) -> Result<ExitCode, String> {
    for OpRecord { kind, error, .. } in &out.records {
        if let Some(e) = error {
            eprintln!("sorrentoctl: {kind} failed: {e:?}");
        }
    }
    Ok(if out.stats.failed_ops == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
