//! Command-line client for a live Sorrento cluster.
//!
//! ```text
//! sorrentoctl --config <cluster.json> create <path> [--ec k,m]
//! sorrentoctl --config <cluster.json> write  <path> <local-file>
//! sorrentoctl --config <cluster.json> read   <path> [offset [len]]
//! sorrentoctl --config <cluster.json> stat   <path>
//! sorrentoctl --config <cluster.json> ls     <path>
//! sorrentoctl --config <cluster.json> rm     <path>
//! sorrentoctl --config <cluster.json> mkdir  <path>
//! sorrentoctl --config <cluster.json> mv     <src> <dst>
//! sorrentoctl --config <cluster.json> stats  <node-id>
//! sorrentoctl --config <cluster.json> members <node-id>
//! sorrentoctl --config <cluster.json> top
//! sorrentoctl --config <cluster.json> trace  <span>
//! sorrentoctl --config <cluster.json> chaos  <node-id> off
//! sorrentoctl --config <cluster.json> chaos  <node-id> <seed> <drop‰> [dup‰ [delay‰ <delay-µs>]]
//! ```
//!
//! Every file command compiles an [`FsScript`] program and runs it
//! through the same `SorrentoClient` state machine the simulator uses,
//! over TCP, and prints the trace span of each op it issues so the
//! causal chain can be pulled back out with `trace`. `read` with no
//! explicit length stats the file first and reads to EOF. `stats`
//! fetches a daemon's metrics registry as JSON; `top` polls every node
//! and renders a cluster-wide table from the versioned snapshots.
//! `members` asks one provider for its membership view — under gossip
//! (`"membership": "swim"`) the SWIM table with per-member state
//! (alive/suspect) and incarnation, under heartbeats the classic
//! liveness view — and renders it as a table.
//! `trace <span>` asks every node's flight recorder for that span's
//! events and renders the merged causal chain on the wall-clock
//! timeline. `chaos` installs (or, with `off`, clears) deterministic
//! fault-injection rules on one daemon's mesh — the game-day tool; see
//! RUNBOOK.md. Rules shape the frames that daemon *sends*.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use sorrento::api::FsScript;
use sorrento::client::ClientOp;
use sorrento::FileOptions;
use sorrento_json::Json;
use sorrento_net::chaos::ChaosConfig;
use sorrento_net::config::CtlConfig;
use sorrento_net::ctl::{self, OpRecord, ScriptOutcome};
use sorrento_net::daemon::STATS_SCHEMA_V;
use sorrento_net::flight::FLIGHT_SCHEMA_V;
use sorrento_sim::{NodeId, SpanId};

/// Wall-clock budget for one command, discovery included.
const DEADLINE: Duration = Duration::from_secs(30);
/// Per-node budget when fanning out (`top`, `trace`): a dead node
/// should cost seconds, not the whole command deadline.
const PER_NODE: Duration = Duration::from_secs(5);
/// Declared maximum size for `--ec` files (striping requires the max
/// up front; 256 MB ⇒ shard widths stay sane for CLI-scale files).
const EC_MAX_SIZE: u64 = 256 << 20;
const USAGE: &str = "usage: sorrentoctl --config <cluster.json> \
    <create|write|read|stat|ls|rm|mkdir|mv|stats|members|top|trace|chaos> [args]\n\
    create <path> [--ec k,m]   erasure-coded instead of replicated\n\
    members <node-id>          one provider's membership view";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sorrentoctl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = std::env::args().skip(1);
    let mut config_path: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        if a == "--config" || a == "-c" {
            config_path = Some(args.next().ok_or("--config needs a value")?);
        } else {
            rest.push(a);
        }
    }
    let config_path = config_path.ok_or(USAGE)?;
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let cfg = CtlConfig::parse(&text).map_err(|e| format!("{config_path}: {e}"))?;

    let (cmd, cmd_args) = rest.split_first().ok_or(USAGE)?;
    match (cmd.as_str(), cmd_args) {
        ("create", [path]) => {
            let mut fs = FsScript::new();
            let h = fs.create(path).map_err(|e| e.to_string())?;
            fs.close(h).map_err(|e| e.to_string())?;
            report(run_fs(&cfg, fs)?)
        }
        ("create", [path, flag, spec]) if flag == "--ec" => {
            let (k, m) = spec
                .split_once(',')
                .and_then(|(k, m)| Some((k.trim().parse().ok()?, m.trim().parse().ok()?)))
                .filter(|&(k, m): &(u8, u8)| k >= 1 && m >= 1 && k as usize + (m as usize) <= 255)
                .ok_or("--ec takes k,m (e.g. --ec 4,2)")?;
            let mut fs = FsScript::new();
            let h = fs
                .create_with(path, FileOptions::erasure_coded(k, m, EC_MAX_SIZE))
                .map_err(|e| e.to_string())?;
            fs.close(h).map_err(|e| e.to_string())?;
            let code = report(run_fs(&cfg, fs)?)?;
            if code == ExitCode::SUCCESS {
                eprintln!("created {path} with EC({k},{m})");
            }
            Ok(code)
        }
        ("write", [path, local]) => {
            let data =
                std::fs::read(local).map_err(|e| format!("cannot read {local}: {e}"))?;
            let n = data.len();
            // Create-or-open: a pre-created file keeps its options (a
            // `create --ec` file must not be recreated as replicated).
            let mut probe = FsScript::new();
            probe.stat(path).map_err(|e| e.to_string())?;
            let exists = run_fs(&cfg, probe)?.stats.failed_ops == 0;
            let mut fs = FsScript::new();
            let h = if exists { fs.open(path, true) } else { fs.create(path) }
                .map_err(|e| e.to_string())?;
            fs.write(h, 0, data).map_err(|e| e.to_string())?;
            fs.close(h).map_err(|e| e.to_string())?;
            let code = report(run_fs(&cfg, fs)?)?;
            if code == ExitCode::SUCCESS {
                eprintln!("wrote {n} bytes to {path}");
            }
            Ok(code)
        }
        ("read", [path, tail @ ..]) if tail.len() <= 2 => {
            let offset: u64 = match tail.first() {
                Some(s) => s.parse().map_err(|_| "offset must be a number")?,
                None => 0,
            };
            let len: u64 = match tail.get(1) {
                Some(s) => s.parse().map_err(|_| "len must be a number")?,
                None => {
                    // No explicit length: stat first, read to EOF.
                    let mut fs = FsScript::new();
                    fs.stat(path).map_err(|e| e.to_string())?;
                    let out = run_fs(&cfg, fs)?;
                    if out.stats.failed_ops > 0 {
                        return report(out);
                    }
                    let size = out.records.first().map_or(0, |r| r.bytes);
                    size.saturating_sub(offset)
                }
            };
            let mut fs = FsScript::new();
            let h = fs.open(path, false).map_err(|e| e.to_string())?;
            if len > 0 {
                fs.read(h, offset, len).map_err(|e| e.to_string())?;
            }
            fs.close(h).map_err(|e| e.to_string())?;
            let out = run_fs(&cfg, fs)?;
            if out.stats.failed_ops == 0 {
                if let Some(data) = out.records.iter().find_map(|r| {
                    (r.kind == "read").then(|| r.data.clone()).flatten()
                }) {
                    std::io::stdout()
                        .write_all(&data)
                        .map_err(|e| e.to_string())?;
                }
            }
            report(out)
        }
        ("stat", [path]) => {
            let mut fs = FsScript::new();
            fs.stat(path).map_err(|e| e.to_string())?;
            let out = run_fs(&cfg, fs)?;
            if out.stats.failed_ops == 0 {
                println!("{path}: {} bytes", out.records.first().map_or(0, |r| r.bytes));
            }
            report(out)
        }
        ("ls", [path]) => {
            let mut fs = FsScript::new();
            fs.list(path).map_err(|e| e.to_string())?;
            let out = run_fs(&cfg, fs)?;
            if out.stats.failed_ops == 0 {
                if let Some(Some(blob)) = out.records.first().map(|r| r.data.clone()) {
                    println!("{}", String::from_utf8_lossy(&blob));
                }
            }
            report(out)
        }
        ("rm", [path]) => {
            let mut fs = FsScript::new();
            fs.unlink(path).map_err(|e| e.to_string())?;
            report(run_fs(&cfg, fs)?)
        }
        ("mkdir", [path]) => {
            let mut fs = FsScript::new();
            fs.mkdir(path).map_err(|e| e.to_string())?;
            report(run_fs(&cfg, fs)?)
        }
        ("mv", [src, dst]) => {
            let mut fs = FsScript::new();
            fs.rename(src, dst).map_err(|e| e.to_string())?;
            report(run_fs(&cfg, fs)?)
        }
        ("stats", [node]) => {
            let id: usize = node.parse().map_err(|_| "stats takes a node id")?;
            let json = ctl::fetch_stats(&cfg, NodeId::from_index(id), DEADLINE)
                .map_err(|e| e.to_string())?;
            check_snapshot_version(&json, id);
            println!("{json}");
            Ok(ExitCode::SUCCESS)
        }
        ("members", [node]) => {
            let id: usize = node.parse().map_err(|_| "members takes a node id")?;
            let json = ctl::fetch_members(&cfg, NodeId::from_index(id), DEADLINE)
                .map_err(|e| e.to_string())?;
            cmd_members(&json, id)
        }
        ("top", []) => cmd_top(&cfg),
        ("trace", [span]) => cmd_trace(&cfg, parse_span(span)?),
        ("chaos", [node, rule @ ..]) if !rule.is_empty() => {
            let id: usize = node.parse().map_err(|_| "chaos takes a node id first")?;
            let chaos = if rule == ["off"] {
                ChaosConfig::default() // all-zero rules clear injection
            } else {
                let num = |i: usize, what: &str| -> Result<u64, String> {
                    match rule.get(i) {
                        None => Ok(0),
                        Some(s) => s.parse().map_err(|_| format!("{what} must be a number")),
                    }
                };
                ChaosConfig {
                    seed: num(0, "seed")?,
                    drop_permille: num(1, "drop permille")? as u32,
                    dup_permille: num(2, "dup permille")? as u32,
                    delay_permille: num(3, "delay permille")? as u32,
                    delay: Duration::from_micros(num(4, "delay microseconds")?),
                    partition: Vec::new(),
                }
            };
            ctl::set_chaos(&cfg, NodeId::from_index(id), &chaos, DEADLINE)
                .map_err(|e| e.to_string())?;
            if chaos.is_active() {
                eprintln!(
                    "chaos on n{id}: seed {} drop {}‰ dup {}‰ delay {}‰×{:?}",
                    chaos.seed, chaos.drop_permille, chaos.dup_permille,
                    chaos.delay_permille, chaos.delay
                );
            } else {
                eprintln!("chaos off on n{id}");
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(USAGE.into()),
    }
}

fn run_fs(cfg: &CtlConfig, fs: FsScript) -> Result<ScriptOutcome, String> {
    let ops = fs.into_ops();
    // Writes need enough providers discovered to place `replication`
    // replicas; metadata-only programs can start as soon as one
    // provider is known (the namespace server answers those).
    let writes = ops.iter().any(|op| {
        matches!(
            op,
            ClientOp::Create { .. }
                | ClientOp::CreateWith { .. }
                | ClientOp::Write { .. }
                | ClientOp::Append { .. }
                | ClientOp::AtomicAppend { .. }
        )
    });
    let min_providers = if writes { cfg.replication as usize } else { 1 };
    ctl::run_script(cfg, ops, min_providers, DEADLINE).map_err(|e| e.to_string())
}

fn report(out: ScriptOutcome) -> Result<ExitCode, String> {
    for OpRecord { kind, error, span, .. } in &out.records {
        if *span != 0 {
            eprintln!("{kind}: span {span:#x}");
        }
        if let Some(e) = error {
            eprintln!("sorrentoctl: {kind} failed: {e:?}");
        }
    }
    Ok(if out.stats.failed_ops == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn parse_span(s: &str) -> Result<SpanId, String> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => SpanId::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("bad span {s:?}: expected decimal or 0x-hex"))
}

/// Warn when a stats snapshot's schema version is missing or newer than
/// this binary understands; the raw JSON is still printed either way.
fn check_snapshot_version(json: &str, node: usize) {
    let v = Json::parse(json)
        .ok()
        .and_then(|j| j.get("v").and_then(Json::as_u64));
    match v {
        Some(v) if v == STATS_SCHEMA_V => {}
        Some(v) => eprintln!(
            "sorrentoctl: n{node} snapshot is v{v}, this binary understands v{STATS_SCHEMA_V} — fields may be missing or renamed"
        ),
        None => eprintln!("sorrentoctl: n{node} snapshot has no version field (pre-v1 daemon?)"),
    }
}

/// Render one provider's membership view (`sorrentoctl members`).
/// Exits non-zero when any member is suspect or dead, so game-day
/// scripts can poll for "suspicion formed" / "cluster healthy again".
fn cmd_members(json: &str, node: usize) -> Result<ExitCode, String> {
    let Ok(view) = Json::parse(json) else {
        return Err(format!("n{node} sent an unparseable members reply"));
    };
    let str_of = |j: &Json, k: &str| j.get(k).and_then(Json::as_str).unwrap_or("?").to_owned();
    println!(
        "=== n{node} membership (mode {}, location {}, {} live) ===",
        str_of(&view, "mode"),
        str_of(&view, "location"),
        view.get("live").and_then(Json::as_u64).unwrap_or(0),
    );
    println!("{:<6} {:<8} {:>5} {:>6} {:>10} {:>10}", "NODE", "STATE", "INC", "LOAD", "AVAIL", "CAP");
    let mut unhealthy = false;
    for m in view.get("members").and_then(Json::as_arr).unwrap_or(&[]) {
        let state = str_of(m, "state");
        unhealthy |= state != "alive";
        let num = |k: &str| {
            m.get(k)
                .and_then(Json::as_u64)
                .map_or_else(|| "-".to_owned(), |v| v.to_string())
        };
        println!(
            "{:<6} {:<8} {:>5} {:>6} {:>10} {:>10}",
            format!("n{}", m.get("node").and_then(Json::as_u64).unwrap_or(0)),
            state,
            num("incarnation"),
            m.get("load")
                .and_then(Json::as_f64)
                .map_or_else(|| "-".to_owned(), |l| format!("{l:.2}")),
            num("available"),
            num("capacity"),
        );
    }
    Ok(if unhealthy { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

/// Poll every node's versioned stats snapshot and render one table row
/// per node. Unreachable nodes get a row, not an error: the whole point
/// of `top` is seeing which nodes are sick.
fn cmd_top(cfg: &CtlConfig) -> Result<ExitCode, String> {
    println!(
        "{:<6} {:<10} {:<6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>16} SLOWEST",
        "NODE", "ROLE", "SHARD", "UP(s)", "EVENTS", "DROPPED", "CONNS", "QMAX", "CHAOS(d/D/~)"
    );
    let mut unhealthy = false;
    for peer in &cfg.peers {
        let idx = peer.id.index();
        let json = match ctl::fetch_stats(cfg, peer.id, PER_NODE) {
            Ok(j) => j,
            Err(_) => {
                println!("{:<6} {:<10} (unreachable)", format!("n{idx}"), "-");
                unhealthy = true;
                continue;
            }
        };
        let Ok(snap) = Json::parse(&json) else {
            println!("{:<6} {:<10} (unparseable snapshot)", format!("n{idx}"), "-");
            unhealthy = true;
            continue;
        };
        match snap.get("v").and_then(Json::as_u64) {
            Some(v) if v == STATS_SCHEMA_V => {}
            v => {
                println!(
                    "{:<6} {:<10} (snapshot {} — this binary understands v{STATS_SCHEMA_V})",
                    format!("n{idx}"),
                    "-",
                    v.map_or("unversioned".into(), |v| format!("v{v}"))
                );
                unhealthy = true;
                continue;
            }
        }
        let str_of = |k: &str| snap.get(k).and_then(Json::as_str).unwrap_or("?").to_owned();
        let gauge = |k: &str| {
            snap.get("gauges")
                .and_then(|g| g.get(k))
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64
        };
        let flight = |k: &str| {
            snap.get("flight")
                .and_then(|f| f.get(k))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        let slowest = snap
            .get("slow_ops")
            .and_then(Json::as_arr)
            .and_then(<[Json]>::first)
            .map_or_else(
                || "-".to_owned(),
                |op| {
                    format!(
                        "{}µs {} span {:#x}",
                        op.get("dur_us").and_then(Json::as_u64).unwrap_or(0),
                        op.get("kind").and_then(Json::as_str).unwrap_or("?"),
                        op.get("span").and_then(Json::as_u64).unwrap_or(0),
                    )
                },
            );
        // Namespace/standby snapshots carry their shard index;
        // providers have none.
        let shard = snap
            .get("shard")
            .and_then(Json::as_u64)
            .map_or_else(|| "-".to_owned(), |k| format!("ns{k}"));
        println!(
            "{:<6} {:<10} {:<6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>16} {}",
            format!("n{idx}"),
            str_of("role"),
            shard,
            snap.get("uptime_ms").and_then(Json::as_u64).unwrap_or(0) / 1000,
            flight("len"),
            flight("dropped"),
            gauge("net_conns"),
            gauge("net_queue_depth_max"),
            format!(
                "{}/{}/{}",
                gauge("net_chaos_dropped"),
                gauge("net_chaos_duplicated"),
                gauge("net_chaos_delayed")
            ),
            slowest,
        );
    }
    Ok(if unhealthy { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

/// Pull one span's events out of every node's flight recorder and
/// render the merged causal chain on the shared wall-clock timeline.
fn cmd_trace(cfg: &CtlConfig, span: SpanId) -> Result<ExitCode, String> {
    // (unix_ns, node index, role, event text) per event, cluster-wide.
    let mut events: Vec<(u64, usize, String, String)> = Vec::new();
    for peer in &cfg.peers {
        let idx = peer.id.index();
        let json = match ctl::fetch_trace(cfg, peer.id, span, PER_NODE) {
            Ok(j) => j,
            Err(_) => {
                eprintln!("sorrentoctl: n{idx} unreachable, trace is partial");
                continue;
            }
        };
        let Ok(dump) = Json::parse(&json) else {
            eprintln!("sorrentoctl: n{idx} sent an unparseable trace reply");
            continue;
        };
        match dump.get("v").and_then(Json::as_u64) {
            Some(v) if v == FLIGHT_SCHEMA_V => {}
            v => {
                eprintln!(
                    "sorrentoctl: n{idx} flight dump is {:?}, this binary understands v{FLIGHT_SCHEMA_V}; skipping",
                    v
                );
                continue;
            }
        }
        let role = dump.get("role").and_then(Json::as_str).unwrap_or("?").to_owned();
        if dump.get("dropped").and_then(Json::as_u64).unwrap_or(0) > 0 {
            eprintln!("sorrentoctl: n{idx} flight ring wrapped; oldest events are gone");
        }
        for ev in dump.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
            events.push((
                ev.get("unix_ns").and_then(Json::as_u64).unwrap_or(0),
                idx,
                role.clone(),
                ev.get("text").and_then(Json::as_str).unwrap_or("?").to_owned(),
            ));
        }
    }
    events.sort();
    println!("=== trace for span {span:#x} ===");
    if events.is_empty() {
        println!("(no events — span unknown, or already evicted from every ring)");
        return Ok(ExitCode::FAILURE);
    }
    let t0 = events[0].0;
    for (at, idx, role, text) in &events {
        let rel = at.saturating_sub(t0);
        println!(
            "  +{}.{:06}s  {:<14} {text}",
            rel / 1_000_000_000,
            (rel % 1_000_000_000) / 1_000,
            format!("n{idx}/{role}"),
        );
    }
    Ok(ExitCode::SUCCESS)
}
