//! Per-node flight recorder: the real runtime's black box.
//!
//! A [`FlightRecorder`] wraps the same bounded [`EventLog`] the
//! simulator uses behind a cheap uncontended mutex, so every thread
//! that observes something — the daemon loop, the mesh chaos shim, a
//! crash timer, a panic hook — can append or dump without coordinating
//! with the owner. Timestamps stay monotonic nanoseconds since process
//! start (the `SimTime` convention of [`crate::runtime::RealCtx`]); the
//! recorder additionally pins the process' boot instant to the unix
//! clock (`epoch_unix_ns`), so `epoch_unix_ns + at_ns` places any event
//! on the wall clock shared by every node — that sum is what
//! `sorrentoctl trace` merges across processes. Wall-clock skew between
//! machines is not corrected; on one host (the loopback clusters in
//! this repo) the merged order is the causal order.
//!
//! Dumps are best-effort JSON files named `flight_<node>_<boot-sec>.json`
//! in the node's `data_dir`, written on clean shutdown, on demand
//! (`Msg::TraceQuery`), and — via the process-global [`register`] /
//! [`dump_all`] pair — from panic hooks and `--crash-after` aborts,
//! where no destructors run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use sorrento_json::Json;
use sorrento_sim::{EventLog, EventRecord, NodeId, SimTime, SpanId, TelemetryEvent};

/// Version of the flight-dump / `TraceR` JSON schema.
pub const FLIGHT_SCHEMA_V: u64 = 1;

struct Inner {
    role: &'static str,
    log: EventLog,
}

/// A shared, bounded, crash-dumpable event ring for one node.
#[derive(Clone)]
pub struct FlightRecorder {
    node: NodeId,
    epoch: Instant,
    epoch_unix_ns: u64,
    inner: Arc<Mutex<Inner>>,
}

impl FlightRecorder {
    /// A recorder for `node` retaining at most `cap` records. Captures
    /// the current unix time as the process epoch; callers must create
    /// the recorder at the same moment they anchor their monotonic
    /// clock (see [`crate::runtime::RealCtx::new`]).
    pub fn new(node: NodeId, cap: usize) -> FlightRecorder {
        let epoch_unix_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        FlightRecorder {
            node,
            epoch: Instant::now(),
            epoch_unix_ns,
            inner: Arc::new(Mutex::new(Inner { role: "node", log: EventLog::new(cap) })),
        }
    }

    /// Label the node's role in dumps (`"namespace"`, `"provider"`,
    /// `"ctl"`).
    pub fn set_role(&self, role: &'static str) {
        self.inner.lock().unwrap().role = role;
    }

    /// The node this recorder belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Unix nanoseconds corresponding to monotonic time 0.
    pub fn epoch_unix_ns(&self) -> u64 {
        self.epoch_unix_ns
    }

    /// Append one event at monotonic time `at`.
    pub fn record(&self, at: SimTime, ev: TelemetryEvent) {
        self.inner.lock().unwrap().log.push(at, ev);
    }

    /// Append one event stamped with the recorder's own monotonic
    /// clock. Threads without a `RealCtx` (the mesh, crash hooks) use
    /// this; the recorder is created at the same instant as the ctx's
    /// epoch, so both clocks agree.
    pub fn record_now(&self, ev: TelemetryEvent) {
        self.record(SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64), ev);
    }

    /// Retained records, oldest first (copied out; the ring stays live).
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.inner.lock().unwrap().log.iter().copied().collect()
    }

    /// `(len, dropped)` of the underlying ring.
    pub fn usage(&self) -> (usize, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.log.len(), inner.log.dropped())
    }

    /// The dump body: schema version, identity, clock anchor, ring
    /// counters and events. `span == 0` exports the whole ring; a
    /// non-zero span keeps only that operation's events (the
    /// `Msg::TraceQuery` reply). Every event carries both `at_ns`
    /// (monotonic) and `unix_ns` (wall clock) so dumps from different
    /// processes merge directly.
    pub fn to_json(&self, span: SpanId) -> Json {
        let inner = self.inner.lock().unwrap();
        let mut events = Json::arr();
        for rec in inner.log.iter() {
            if span != 0 && rec.ev.span() != Some(span) {
                continue;
            }
            events.push(
                rec.to_json().with("unix_ns", self.epoch_unix_ns.saturating_add(rec.at.nanos())),
            );
        }
        Json::obj()
            .with("v", FLIGHT_SCHEMA_V)
            .with("node", self.node.index() as u64)
            .with("role", inner.role)
            .with("epoch_unix_ns", self.epoch_unix_ns)
            .with("cap", inner.log.capacity() as u64)
            .with("len", inner.log.len() as u64)
            .with("dropped", inner.log.dropped())
            .with("events", events)
    }

    /// File name this recorder dumps to: one file per process boot, so
    /// repeated dumps refresh the same black box and a restart gets a
    /// fresh one.
    pub fn dump_name(&self) -> String {
        format!("flight_{}_{}.json", self.node.index(), self.epoch_unix_ns / 1_000_000_000)
    }

    /// Write the full ring to `dir`, returning the file path.
    pub fn dump_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.dump_name());
        let body = self.to_json(0).encode_pretty();
        fs::create_dir_all(dir)?;
        fs::write(&path, body)?;
        Ok(path)
    }
}

/// Process-global registry of recorders with their dump directories, so
/// abort paths (panic hook, `--crash-after`) can flush every black box
/// without reaching the daemon loops that own them.
fn registry() -> &'static Mutex<Vec<(FlightRecorder, PathBuf)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(FlightRecorder, PathBuf)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a recorder for crash-time dumping into `dir`.
pub fn register(rec: &FlightRecorder, dir: &Path) {
    registry().lock().unwrap().push((rec.clone(), dir.to_path_buf()));
}

/// Dump every registered recorder (best effort: I/O errors are
/// swallowed — this runs on the way down). Returns how many dumps were
/// written.
pub fn dump_all() -> usize {
    let regs = registry().lock().unwrap();
    regs.iter().filter(|(rec, dir)| rec.dump_to(dir).is_ok()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_filters_by_span_and_roundtrips() {
        let rec = FlightRecorder::new(NodeId::from_index(3), 16);
        rec.set_role("provider");
        rec.record(SimTime::from_nanos(10), TelemetryEvent::OpStart { span: 7, kind: "write" });
        rec.record(SimTime::from_nanos(20), TelemetryEvent::HeartbeatSend { seq: 1 });
        rec.record(
            SimTime::from_nanos(30),
            TelemetryEvent::OpEnd { span: 7, kind: "write", ok: true },
        );

        let all = rec.to_json(0);
        assert_eq!(all.get("v").and_then(Json::as_u64), Some(FLIGHT_SCHEMA_V));
        assert_eq!(all.get("role").and_then(Json::as_str), Some("provider"));
        assert_eq!(all.get("events").and_then(Json::as_arr).unwrap().len(), 3);

        let span7 = rec.to_json(7);
        let events = span7.get("events").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        for ev in events {
            assert_eq!(ev.get("span").and_then(Json::as_u64), Some(7));
            let at = ev.get("at_ns").and_then(Json::as_u64).unwrap();
            let unix = ev.get("unix_ns").and_then(Json::as_u64).unwrap();
            assert_eq!(unix - at, rec.epoch_unix_ns());
        }

        // Encode → parse → same event count (the ctl-side consumer path).
        let parsed = Json::parse(&all.encode()).unwrap();
        assert_eq!(parsed.get("events").and_then(Json::as_arr).unwrap().len(), 3);
    }

    #[test]
    fn dump_to_writes_one_file_per_boot() {
        let dir = std::env::temp_dir().join(format!("sorrento_flight_test_{}", std::process::id()));
        let rec = FlightRecorder::new(NodeId::from_index(1), 4);
        rec.record(SimTime::from_nanos(1), TelemetryEvent::HeartbeatSend { seq: 0 });
        let first = rec.dump_to(&dir).unwrap();
        rec.record(SimTime::from_nanos(2), TelemetryEvent::HeartbeatSend { seq: 1 });
        let second = rec.dump_to(&dir).unwrap();
        assert_eq!(first, second, "same boot dumps refresh the same file");
        let body = std::fs::read_to_string(&second).unwrap();
        let json = Json::parse(&body).unwrap();
        assert_eq!(json.get("len").and_then(Json::as_u64), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }
}
