//! Raw-mesh data-path regression tests: bulk throughput for large
//! frames across the three topologies the daemons exercise (one-way,
//! reply over the inbound connection, fan-in), plus serial and
//! windowed RPC round trips. These run small (3 × 8 MiB, a few
//! thousand RPCs) so they are correctness gates first — a hang or a
//! lost reply fails loudly with queue stats — and throughput probes
//! second (`BULK_MB` / `PING_N` env vars scale them up for manual
//! runs with `--nocapture`).

use std::collections::HashMap;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use sorrento::proto::Msg;
use sorrento::store::{SegMeta, WritePayload};
use sorrento::types::{PlacementPolicy, SegId};
use sorrento_net::tcp::{Mesh, MeshConfig};
use sorrento_sim::NodeId;

fn mesh(i: u64) -> Mesh {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    Mesh::start(NodeId::from_index(i as usize), l, HashMap::new(), MeshConfig::default()).unwrap()
}

#[test]
fn bulk_one_way() {
    let mb: usize = std::env::var("BULK_MB").ok().and_then(|s| s.parse().ok()).unwrap_or(8);
    let a = mesh(900);
    let mut b = mesh(901);
    b.add_peer(NodeId::from_index(900), a.listen_addr());

    let payload = bytes::Bytes::from(vec![0xabu8; mb << 20]);
    let t0 = Instant::now();
    let n = 3u64;
    for req in 0..n {
        b.send(
            NodeId::from_index(900),
            &Msg::DirectWrite {
                req,
                seg: SegId(1),
                offset: 0,
                payload: WritePayload::Real(payload.clone()),
                meta: SegMeta {
                    replication: 1,
                    alpha: 1.0,
                    policy: PlacementPolicy::Random,
                    synthetic: false,
                    ec: None,
                },
            },
        );
    }
    let mut got = 0;
    while got < n {
        if let Some((_, Msg::DirectWrite { .. })) = a.recv_timeout(Duration::from_secs(30)) {
            got += 1;
            eprintln!("frame {got} at {:?}", t0.elapsed());
        } else {
            panic!("timed out, got {got}");
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "one-way {} x {} MB in {:.3}s = {:.1} MB/s; a={:?} b={:?}",
        n,
        mb,
        secs,
        (n as usize * mb) as f64 / secs,
        a.stats(),
        b.stats()
    );

    // Reply direction: a answers over the inbound connection.
    let mut a = a;
    let t0 = Instant::now();
    for req in 0..n {
        a.send(
            NodeId::from_index(901),
            &Msg::DirectWrite {
                req,
                seg: SegId(2),
                offset: 0,
                payload: WritePayload::Real(payload.clone()),
                meta: SegMeta {
                    replication: 1,
                    alpha: 1.0,
                    policy: PlacementPolicy::Random,
                    synthetic: false,
                    ec: None,
                },
            },
        );
    }
    let mut got = 0;
    while got < n {
        if let Some((_, Msg::DirectWrite { .. })) = b.recv_timeout(Duration::from_secs(30)) {
            got += 1;
            eprintln!("reply frame {got} at {:?}", t0.elapsed());
        } else {
            panic!("reply timed out, got {got}");
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "reply-dir {} x {} MB in {:.3}s = {:.1} MB/s; a={:?} b={:?}",
        n,
        mb,
        secs,
        (n as usize * mb) as f64 / secs,
        a.stats(),
        b.stats()
    );
}

#[test]
fn bulk_fan_in() {
    let mb: usize = std::env::var("BULK_MB").ok().and_then(|s| s.parse().ok()).unwrap_or(8);
    let sink = mesh(910);
    let mut senders: Vec<Mesh> = (0..3).map(|i| mesh(911 + i)).collect();
    for s in &mut senders {
        s.add_peer(NodeId::from_index(910), sink.listen_addr());
    }
    let payload = bytes::Bytes::from(vec![0xcdu8; mb << 20]);
    let t0 = Instant::now();
    for (i, s) in senders.iter_mut().enumerate() {
        s.send(
            NodeId::from_index(910),
            &Msg::DirectWrite {
                req: i as u64,
                seg: SegId(3),
                offset: 0,
                payload: WritePayload::Real(payload.clone()),
                meta: SegMeta {
                    replication: 1,
                    alpha: 1.0,
                    policy: PlacementPolicy::Random,
                    synthetic: false,
                    ec: None,
                },
            },
        );
    }
    let mut got = 0;
    while got < 3 {
        if let Some((from, Msg::DirectWrite { .. })) = sink.recv_timeout(Duration::from_secs(30)) {
            got += 1;
            eprintln!("fan-in frame {got} from {from:?} at {:?}", t0.elapsed());
        } else {
            panic!("fan-in timed out, got {got}");
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    eprintln!("fan-in 3 x {} MB in {:.3}s = {:.1} MB/s", mb, secs, (3 * mb) as f64 / secs);
}

#[test]
fn rpc_ping_pong() {
    let n: u64 = std::env::var("PING_N").ok().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let server = mesh(920);
    let mut client = mesh(921);
    client.add_peer(NodeId::from_index(920), server.listen_addr());

    let echo = std::thread::spawn(move || {
        let mut server = server;
        let mut served = 0u64;
        while served < n {
            if let Some((from, Msg::StatsQuery { req })) =
                server.recv_timeout(Duration::from_secs(10))
            {
                server.send(from, &Msg::StatsR { req, json: String::new() });
                served += 1;
            } else {
                panic!("echo side starved at {served}");
            }
        }
        server.shutdown();
    });

    // One warmup round-trip to get the connection up.
    client.send(NodeId::from_index(920), &Msg::StatsQuery { req: u64::MAX });
    // (the echo thread counts it; ask for n+1 total below)
    let _ = client.recv_timeout(Duration::from_secs(10)).expect("warmup rtt");

    let t0 = Instant::now();
    for req in 0..n - 1 {
        client.send(NodeId::from_index(920), &Msg::StatsQuery { req });
        let got = client.recv_timeout(Duration::from_secs(10));
        assert!(matches!(got, Some((_, Msg::StatsR { .. }))), "rtt {req} timed out");
    }
    let secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "ping-pong {} rtts in {:.3}s = {:.1} us/rtt",
        n - 1,
        secs,
        secs * 1e6 / (n - 1) as f64
    );
    echo.join().unwrap();
}

#[test]
fn rpc_windowed() {
    let n: u64 = std::env::var("PING_N").ok().and_then(|s| s.parse().ok()).unwrap_or(4000);
    let window: u64 = 4;
    let server = mesh(930);
    let mut client = mesh(931);
    client.add_peer(NodeId::from_index(930), server.listen_addr());

    let echo = std::thread::spawn(move || {
        let mut server = server;
        let mut served = 0u64;
        while served < n {
            if let Some((from, Msg::StatsQuery { req })) =
                server.recv_timeout(Duration::from_secs(5))
            {
                server.send(from, &Msg::StatsR { req, json: String::new() });
                served += 1;
            } else {
                eprintln!("echo side starved at {served}, stats {:?}", server.stats());
                return;
            }
        }
        server.shutdown();
    });

    let t0 = Instant::now();
    let mut sent = 0u64;
    let mut done = 0u64;
    let mut outstanding: Vec<u64> = Vec::new();
    while sent < window.min(n) {
        client.send(NodeId::from_index(930), &Msg::StatsQuery { req: sent });
        outstanding.push(sent);
        sent += 1;
    }
    while done < n {
        let got = client.recv_timeout(Duration::from_secs(6));
        match got {
            Some((_, Msg::StatsR { req, .. })) => outstanding.retain(|&r| r != req),
            _ => panic!(
                "windowed rtt timed out at {done}: missing reqs {outstanding:?}, client stats {:?}",
                client.stats()
            ),
        }
        done += 1;
        if sent < n {
            client.send(NodeId::from_index(930), &Msg::StatsQuery { req: sent });
            outstanding.push(sent);
            sent += 1;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "windowed({window}) {} rpcs in {:.3}s = {:.1} us/op = {:.0} ops/s",
        n,
        secs,
        secs * 1e6 / n as f64,
        n as f64 / secs
    );
    echo.join().unwrap();
}
