//! The discrete-event engine: event queue, node lifecycle, and the
//! network/disk/CPU charging machinery shared by all nodes.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::disk::{DiskConfig, DiskState};
use crate::net::{NetConfig, Nic};
use crate::node::{Ctx, Node, NodeId, Payload, TimerId};
use crate::telemetry::{EventLog, EventRecord, SpanId};
use crate::time::{Dur, SimTime};
use crate::Metrics;

/// Per-node hardware description.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// NIC parameters (defaults to Fast Ethernet).
    pub net: NetConfig,
    /// Disk parameters (defaults to a 72 GB 10K rpm SCSI drive).
    pub disk: DiskConfig,
    /// Physical machine this daemon runs on. Daemons sharing a machine
    /// (e.g. a Sorrento client co-located with a storage provider, as in
    /// the paper's PSM deployment) exchange messages over loopback:
    /// negligible latency and no NIC charge. `None` gives the node a
    /// machine of its own.
    pub machine: Option<u32>,
    /// Capacity (in records) of this node's telemetry ring buffer
    /// ([`crate::EventLog`]); `0` disables event recording on the node.
    pub event_log_cap: usize,
}

impl Default for NodeConfig {
    fn default() -> NodeConfig {
        NodeConfig {
            net: NetConfig::default(),
            disk: DiskConfig::default(),
            machine: None,
            event_log_cap: EventLog::DEFAULT_CAP,
        }
    }
}

impl NodeConfig {
    /// A node of the paper's *cluster A* (Figure 8): dual P-II 400 MHz,
    /// Fast Ethernet, ~21 GB of exported 7.2–10K rpm SCSI storage.
    pub fn cluster_a() -> NodeConfig {
        NodeConfig {
            net: NetConfig::fast_ethernet(),
            disk: DiskConfig::scsi_10krpm(21_000_000_000),
            ..NodeConfig::default()
        }
    }

    /// A node of the paper's *cluster B* (Figure 8): P-III/Xeon, Fast
    /// Ethernet to the hosts, each exporting a 3-disk software RAID-0 of
    /// 10K rpm SCSI drives (~172 GB, ~3× the single-disk streaming rate).
    pub fn cluster_b() -> NodeConfig {
        let mut disk = DiskConfig::scsi_10krpm(172_000_000_000);
        disk.transfer_rate *= 3.0; // RAID-0 over three spindles
        NodeConfig {
            net: NetConfig::fast_ethernet(),
            disk,
            ..NodeConfig::default()
        }
    }

    /// Override the disk capacity, keeping other disk parameters.
    pub fn with_capacity(mut self, bytes: u64) -> NodeConfig {
        self.disk.capacity = bytes;
        self
    }

    /// Place this daemon on an explicit machine (for co-location).
    pub fn on_machine(mut self, machine: u32) -> NodeConfig {
        self.machine = Some(machine);
        self
    }
}

/// Loopback delivery latency between co-located daemons.
const LOOPBACK_LATENCY: Dur = Dur::nanos(20_000);

pub(crate) struct Slot<M: Payload> {
    node: Option<Box<dyn Node<M>>>,
    alive: bool,
    nic: Nic,
    pub(crate) disk: DiskState,
    cpu_free: SimTime,
    machine: u32,
    pub(crate) events: EventLog,
}

enum Ev<M> {
    Deliver { from: NodeId, dst: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, msg: M },
    Start(NodeId),
    Crash(NodeId),
    Restart(NodeId),
}

struct Entry<M> {
    at: SimTime,
    seq: u64,
    ev: Ev<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Engine internals, shared with [`Ctx`] during callbacks.
pub(crate) struct EngineState<M: Payload> {
    pub(crate) now: SimTime,
    pub(crate) slots: Vec<Slot<M>>,
    queue: BinaryHeap<Reverse<Entry<M>>>,
    cancelled: HashSet<u64>,
    next_timer: u64,
    next_seq: u64,
    pub(crate) rng: SmallRng,
    pub(crate) metrics: Metrics,
    /// Seeded wire-loss injection: `(permille, dedicated RNG)`. `None`
    /// (the default) draws nothing, so lossless seeded runs are
    /// byte-identical to builds without the feature. Loopback delivery
    /// (same node or machine) is never lossy.
    loss: Option<(u32, SmallRng)>,
}

impl<M: Payload> EngineState<M> {
    fn push(&mut self, at: SimTime, ev: Ev<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Entry { at, seq, ev }));
    }

    fn drop_on_wire(&mut self) -> bool {
        match &mut self.loss {
            Some((permille, rng)) => rng.gen_range(0..1000u32) < *permille,
            None => false,
        }
    }

    pub(crate) fn unicast(&mut self, at: SimTime, from: NodeId, dst: NodeId, msg: M) {
        // Co-located daemons (and self-sends) use loopback: no NIC charge.
        if from == dst || self.slots[from.index()].machine == self.slots[dst.index()].machine {
            self.push(at + LOOPBACK_LATENCY, Ev::Deliver { from, dst, msg });
            return;
        }
        let size = msg.wire_size();
        let tx_end = self.slots[from.index()].nic.transmit(at, size);
        if self.drop_on_wire() {
            // The sender still spent its NIC time; the bytes just never
            // arrive.
            return;
        }
        let latency = self.slots[from.index()].nic.config.latency;
        let deliver = self.slots[dst.index()].nic.receive(at, tx_end + latency, size);
        self.push(deliver, Ev::Deliver { from, dst, msg });
    }

    pub(crate) fn multicast(&mut self, at: SimTime, from: NodeId, msg: M) {
        let size = msg.wire_size();
        let tx_end = self.slots[from.index()].nic.transmit(at, size);
        let latency = self.slots[from.index()].nic.config.latency;
        let targets: Vec<NodeId> = (0..self.slots.len())
            .map(NodeId::from_index)
            .filter(|&n| n != from && self.slots[n.index()].alive)
            .collect();
        for dst in targets {
            if self.drop_on_wire() {
                continue;
            }
            let deliver = self.slots[dst.index()]
                .nic
                .receive(at, tx_end + latency, size);
            self.push(
                deliver,
                Ev::Deliver {
                    from,
                    dst,
                    msg: msg.clone(),
                },
            );
        }
    }

    pub(crate) fn set_timer(&mut self, node: NodeId, delay: Dur, msg: M) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.push(self.now + delay, Ev::Timer { node, id, msg });
        id
    }

    pub(crate) fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    pub(crate) fn machine_of(&self, id: NodeId) -> u32 {
        self.slots[id.index()].machine
    }

    pub(crate) fn cpu(&mut self, node: NodeId, service: Dur) -> SimTime {
        let slot = &mut self.slots[node.index()];
        slot.cpu_free = slot.cpu_free.max(self.now) + service;
        slot.cpu_free
    }
}

/// A deterministic discrete-event simulation of one cluster.
pub struct Simulation<M: Payload> {
    state: EngineState<M>,
}

impl<M: Payload> Simulation<M> {
    /// Create an empty simulation driven by `seed`.
    pub fn new(seed: u64) -> Simulation<M> {
        Simulation {
            state: EngineState {
                now: SimTime::ZERO,
                slots: Vec::new(),
                queue: BinaryHeap::new(),
                cancelled: HashSet::new(),
                next_timer: 0,
                next_seq: 0,
                rng: SmallRng::seed_from_u64(seed),
                metrics: Metrics::new(),
                loss: None,
            },
        }
    }

    /// Drop `permille`/1000 of wire messages (unicast and multicast;
    /// never loopback) using a dedicated RNG seeded with `seed`, so the
    /// loss pattern is reproducible and independent of protocol RNG
    /// draws. `permille = 0` restores lossless delivery.
    pub fn set_loss(&mut self, permille: u32, seed: u64) {
        self.state.loss = (permille > 0)
            .then(|| (permille.min(1000), SmallRng::seed_from_u64(seed)));
    }

    /// Add a node that comes online immediately (its
    /// [`Node::on_start`] runs at the current virtual time).
    pub fn add_node<N: Node<M>>(&mut self, node: N, config: NodeConfig) -> NodeId {
        let id = self.add_node_offline(node, config);
        self.state.push(self.state.now, Ev::Start(id));
        self.state.slots[id.index()].alive = true;
        id
    }

    /// Add a node that stays offline until [`Simulation::start_at`] brings
    /// it up (models a machine added to the rack later).
    pub fn add_node_offline<N: Node<M>>(&mut self, node: N, config: NodeConfig) -> NodeId {
        let id = NodeId(self.state.slots.len() as u32);
        // Machines are numbered from a high base when auto-assigned so they
        // cannot collide with explicitly chosen machine ids.
        let machine = config.machine.unwrap_or(1_000_000 + id.0);
        self.state.slots.push(Slot {
            node: Some(Box::new(node)),
            alive: false,
            nic: Nic::new(config.net),
            disk: DiskState::new(config.disk),
            cpu_free: SimTime::ZERO,
            machine,
            events: EventLog::new(config.event_log_cap),
        });
        id
    }

    /// The physical machine a node runs on.
    pub fn machine_of(&self, id: NodeId) -> u32 {
        self.state.slots[id.index()].machine
    }

    /// Bring an offline node online at virtual time `at`.
    pub fn start_at(&mut self, at: SimTime, id: NodeId) {
        self.state.push(at, Ev::Start(id));
    }

    /// Crash node `id` at virtual time `at`: it stops receiving messages
    /// and its volatile state is dropped via [`Node::on_crash`]. Its disk
    /// contents survive.
    pub fn crash_at(&mut self, at: SimTime, id: NodeId) {
        self.state.push(at, Ev::Crash(id));
    }

    /// Restart a crashed node at virtual time `at` (its
    /// [`Node::on_start`] runs again).
    pub fn restart_at(&mut self, at: SimTime, id: NodeId) {
        self.state.push(at, Ev::Restart(id));
    }

    /// Inject a message from "outside the cluster" (the harness), delivered
    /// to `dst` at the current virtual time without NIC charging.
    pub fn inject(&mut self, dst: NodeId, msg: M) {
        let now = self.state.now;
        self.state.push(now, Ev::Deliver { from: dst, dst, msg });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.state.now
    }

    /// Whether `id` is currently online.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.state.slots[id.index()].alive
    }

    /// Number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.state.slots.len()
    }

    /// Run-wide metrics (read-only).
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Run-wide metrics (mutable, for harness-recorded series).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.state.metrics
    }

    /// A node's telemetry event log.
    pub fn events(&self, id: NodeId) -> &EventLog {
        &self.state.slots[id.index()].events
    }

    /// All nodes' telemetry events merged into one stream, ordered by
    /// virtual time (ties broken by node id, then recording order —
    /// fully deterministic for a given seed).
    pub fn merged_events(&self) -> Vec<(NodeId, EventRecord)> {
        let mut all: Vec<(NodeId, EventRecord)> = Vec::new();
        for (i, slot) in self.state.slots.iter().enumerate() {
            let id = NodeId::from_index(i);
            all.extend(slot.events.iter().map(|&rec| (id, rec)));
        }
        // Per-node logs are already time-ordered, so a stable sort on
        // time keeps (node, recording-order) as the tie-break.
        all.sort_by_key(|(_, rec)| rec.at);
        all
    }

    /// The merged event stream filtered to one operation's span: the
    /// causal chain of that operation across every node it touched.
    pub fn events_for_span(&self, span: SpanId) -> Vec<(NodeId, EventRecord)> {
        let mut chain = self.merged_events();
        chain.retain(|(_, rec)| rec.ev.span() == Some(span));
        chain
    }

    /// Inspect a node's concrete state (post-run analysis in the
    /// experiment harness and tests).
    pub fn node_ref<N: Node<M>>(&self, id: NodeId) -> Option<&N> {
        let node = self.state.slots[id.index()].node.as_deref()?;
        (node as &dyn Any).downcast_ref::<N>()
    }

    /// Mutable variant of [`Simulation::node_ref`].
    pub fn node_mut<N: Node<M>>(&mut self, id: NodeId) -> Option<&mut N> {
        let node = self.state.slots[id.index()].node.as_deref_mut()?;
        (node as &mut dyn Any).downcast_mut::<N>()
    }

    /// Bytes used on a node's disk (harness-side reporting).
    pub fn disk_used(&self, id: NodeId) -> u64 {
        self.state.slots[id.index()].disk.used()
    }

    /// Disk capacity of a node (harness-side reporting).
    pub fn disk_capacity(&self, id: NodeId) -> u64 {
        self.state.slots[id.index()].disk.capacity()
    }

    /// Process a single event if one is pending. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let Reverse(entry) = match self.state.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(entry.at >= self.state.now, "time went backwards");
        self.state.now = entry.at;
        match entry.ev {
            Ev::Deliver { from, dst, msg } => {
                if self.state.slots[dst.index()].alive {
                    self.with_node(dst, |node, ctx| node.on_message(from, msg, ctx));
                } else {
                    self.state.metrics.count("net.dropped_to_dead", 1);
                }
            }
            Ev::Timer { node, id, msg } => {
                if self.state.cancelled.remove(&id.0) {
                    // cancelled before firing
                } else if self.state.slots[node.index()].alive {
                    self.with_node(node, |n, ctx| n.on_message(ctx.id(), msg, ctx));
                }
            }
            Ev::Start(id) => {
                self.state.slots[id.index()].alive = true;
                self.with_node(id, |n, ctx| n.on_start(ctx));
            }
            Ev::Crash(id) => {
                let slot = &mut self.state.slots[id.index()];
                if slot.alive {
                    slot.alive = false;
                    if let Some(n) = slot.node.as_deref_mut() {
                        n.on_crash();
                    }
                }
            }
            Ev::Restart(id) => {
                let slot = &mut self.state.slots[id.index()];
                if !slot.alive {
                    slot.alive = true;
                    self.with_node(id, |n, ctx| n.on_start(ctx));
                }
            }
        }
        true
    }

    /// Run every event up to and including virtual time `until`; the clock
    /// ends at `until` even if the queue drains earlier.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(Reverse(top)) = self.state.queue.peek() {
            if top.at > until {
                break;
            }
            self.step();
        }
        self.state.now = self.state.now.max(until);
    }

    /// Run for `d` of virtual time from the current clock.
    pub fn run_for(&mut self, d: Dur) {
        let until = self.state.now + d;
        self.run_until(until);
    }

    /// Run until the event queue is fully drained (use with care: systems
    /// with periodic timers never drain).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node<M>, &mut Ctx<'_, M>)) {
        let mut node = self.state.slots[id.index()]
            .node
            .take()
            .expect("node re-entered during its own callback");
        let mut ctx = Ctx {
            id,
            engine: &mut self.state,
        };
        f(node.as_mut(), &mut ctx);
        self.state.slots[id.index()].node = Some(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum M {
        Ping(u32),
        Pong(u32),
        Tick,
        Big(u64),
    }

    impl Payload for M {
        fn wire_size(&self) -> u64 {
            match self {
                M::Big(n) => *n,
                _ => 64,
            }
        }
    }

    /// Replies to every Ping with a Pong carrying the same tag.
    struct Echo;
    impl Node<M> for Echo {
        fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>) {
            if let M::Ping(tag) = msg {
                ctx.send(from, M::Pong(tag));
            }
        }
    }

    /// Sends pings and records replies + reply times.
    struct Pinger {
        peer: NodeId,
        to_send: u32,
        replies: Vec<(u32, SimTime)>,
    }
    impl Node<M> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
            for tag in 0..self.to_send {
                ctx.send(self.peer, M::Ping(tag));
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: M, ctx: &mut Ctx<'_, M>) {
            if let M::Pong(tag) = msg {
                self.replies.push((tag, ctx.now()));
            }
        }
    }

    fn two_node_sim() -> (Simulation<M>, NodeId, NodeId) {
        let mut sim = Simulation::new(1);
        let echo = sim.add_node(Echo, NodeConfig::default());
        let pinger = sim.add_node(
            Pinger {
                peer: echo,
                to_send: 3,
                replies: Vec::new(),
            },
            NodeConfig::default(),
        );
        (sim, echo, pinger)
    }

    #[test]
    fn request_reply_round_trips() {
        let (mut sim, _echo, pinger) = two_node_sim();
        sim.run_for(Dur::secs(1));
        let p: &Pinger = sim.node_ref(pinger).unwrap();
        let tags: Vec<u32> = p.replies.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, vec![0, 1, 2]);
        // Each RTT ≥ 2 × latency.
        assert!(p.replies[0].1 >= SimTime::ZERO + Dur::micros(300));
    }

    #[test]
    fn messages_to_dead_nodes_are_dropped() {
        let (mut sim, echo, pinger) = two_node_sim();
        sim.crash_at(SimTime::ZERO, echo);
        sim.run_for(Dur::secs(1));
        let p: &Pinger = sim.node_ref(pinger).unwrap();
        assert!(p.replies.is_empty());
        assert_eq!(sim.metrics().counter("net.dropped_to_dead"), 3);
    }

    #[test]
    fn restart_brings_node_back() {
        let (mut sim, echo, pinger) = two_node_sim();
        sim.crash_at(SimTime::ZERO, echo);
        sim.restart_at(SimTime::ZERO + Dur::millis(500), echo);
        sim.run_for(Dur::secs(1));
        // Initial pings lost; re-ping after restart succeeds.
        sim.inject(pinger, M::Tick); // no-op for Pinger
        assert!(sim.is_alive(echo));
    }

    struct TickCounter {
        fired: u32,
        cancel_second: bool,
    }
    impl Node<M> for TickCounter {
        fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
            ctx.set_timer(Dur::millis(10), M::Tick);
            let second = ctx.set_timer(Dur::millis(20), M::Tick);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
        }
        fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>) {
            if from == ctx.id() && msg == M::Tick {
                self.fired += 1;
            }
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim = Simulation::new(7);
        let a = sim.add_node(
            TickCounter {
                fired: 0,
                cancel_second: false,
            },
            NodeConfig::default(),
        );
        let b = sim.add_node(
            TickCounter {
                fired: 0,
                cancel_second: true,
            },
            NodeConfig::default(),
        );
        sim.run_for(Dur::secs(1));
        assert_eq!(sim.node_ref::<TickCounter>(a).unwrap().fired, 2);
        assert_eq!(sim.node_ref::<TickCounter>(b).unwrap().fired, 1);
    }

    struct Mute;
    impl Node<M> for Mute {
        fn on_message(&mut self, _from: NodeId, _msg: M, _ctx: &mut Ctx<'_, M>) {}
    }

    struct Caster {
        n: u64,
    }
    impl Node<M> for Caster {
        fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
            ctx.multicast(M::Big(self.n));
        }
        fn on_message(&mut self, _from: NodeId, _msg: M, _ctx: &mut Ctx<'_, M>) {}
    }

    #[test]
    fn multicast_reaches_all_live_nodes() {
        #[derive(Default)]
        struct Sink {
            got: u32,
        }
        impl Node<M> for Sink {
            fn on_message(&mut self, _from: NodeId, _msg: M, _ctx: &mut Ctx<'_, M>) {
                self.got += 1;
            }
        }
        let mut sim = Simulation::new(3);
        let s1 = sim.add_node(Sink::default(), NodeConfig::default());
        let s2 = sim.add_node(Sink::default(), NodeConfig::default());
        let s3 = sim.add_node(Sink::default(), NodeConfig::default());
        sim.crash_at(SimTime::ZERO, s3);
        sim.run_until(SimTime::ZERO + Dur::millis(1));
        sim.add_node(Caster { n: 100 }, NodeConfig::default());
        sim.run_for(Dur::secs(1));
        assert_eq!(sim.node_ref::<Sink>(s1).unwrap().got, 1);
        assert_eq!(sim.node_ref::<Sink>(s2).unwrap().got, 1);
        assert_eq!(sim.node_ref::<Sink>(s3).unwrap().got, 0);
    }

    #[test]
    fn large_transfers_respect_bandwidth() {
        // 12.5 MB over Fast Ethernet takes ~1 s one way.
        let mut sim = Simulation::new(9);
        let sink = sim.add_node(Mute, NodeConfig::default());
        struct Sender {
            dst: NodeId,
        }
        impl Node<M> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
                ctx.send(self.dst, M::Big(12_500_000));
            }
            fn on_message(&mut self, _f: NodeId, _m: M, _c: &mut Ctx<'_, M>) {}
        }
        sim.add_node(Sender { dst: sink }, NodeConfig::default());
        // After 0.9 s the delivery has not happened yet; after 1.1 s it has.
        sim.run_until(SimTime::ZERO + Dur::millis(900));
        assert_eq!(sim.metrics().counter("net.dropped_to_dead"), 0);
        sim.crash_at(sim.now(), sink);
        sim.run_for(Dur::millis(300));
        assert_eq!(sim.metrics().counter("net.dropped_to_dead"), 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let (mut sim, _e, p) = {
                let mut sim = Simulation::new(seed);
                let echo = sim.add_node(Echo, NodeConfig::default());
                let pinger = sim.add_node(
                    Pinger {
                        peer: echo,
                        to_send: 10,
                        replies: Vec::new(),
                    },
                    NodeConfig::default(),
                );
                (sim, echo, pinger)
            };
            sim.run_for(Dur::secs(2));
            sim.node_ref::<Pinger>(p).unwrap().replies.clone()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn clock_advances_to_run_until_target() {
        let mut sim: Simulation<M> = Simulation::new(0);
        sim.run_until(SimTime::ZERO + Dur::secs(5));
        assert_eq!(sim.now(), SimTime::ZERO + Dur::secs(5));
    }

    #[test]
    fn hardware_presets_match_figure8() {
        let a = NodeConfig::cluster_a();
        let b = NodeConfig::cluster_b();
        assert_eq!(a.net.bandwidth, 12.5e6); // Fast Ethernet everywhere
        assert_eq!(b.net.bandwidth, 12.5e6);
        assert!(b.disk.capacity > a.disk.capacity);
        assert!(b.disk.transfer_rate > a.disk.transfer_rate); // RAID-0
    }

    #[test]
    fn loopback_skips_the_nic() {
        // Two co-located daemons exchange a huge message instantly; the
        // same transfer between machines takes ~1 s of NIC time.
        struct Recv {
            at: Option<SimTime>,
        }
        impl Node<M> for Recv {
            fn on_message(&mut self, _f: NodeId, _m: M, ctx: &mut Ctx<'_, M>) {
                self.at = Some(ctx.now());
            }
        }
        struct Send {
            dst: NodeId,
        }
        impl Node<M> for Send {
            fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
                ctx.send(self.dst, M::Big(12_500_000));
            }
            fn on_message(&mut self, _f: NodeId, _m: M, _c: &mut Ctx<'_, M>) {}
        }
        let mut sim = Simulation::new(1);
        let local_rx = sim.add_node(Recv { at: None }, NodeConfig::default().on_machine(7));
        sim.add_node(Send { dst: local_rx }, NodeConfig::default().on_machine(7));
        let remote_rx = sim.add_node(Recv { at: None }, NodeConfig::default().on_machine(8));
        sim.add_node(Send { dst: remote_rx }, NodeConfig::default().on_machine(9));
        sim.run_for(Dur::secs(5));
        let local = sim.node_ref::<Recv>(local_rx).unwrap().at.unwrap();
        let remote = sim.node_ref::<Recv>(remote_rx).unwrap().at.unwrap();
        assert!(local < SimTime::ZERO + Dur::millis(1), "loopback {local:?}");
        assert!(remote >= SimTime::ZERO + Dur::secs(1), "wire {remote:?}");
    }

    #[test]
    fn cpu_queue_serializes() {
        struct Busy {
            completions: Vec<SimTime>,
        }
        impl Node<M> for Busy {
            fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
                let a = ctx.cpu(Dur::millis(10));
                let b = ctx.cpu(Dur::millis(10));
                self.completions = vec![a, b];
            }
            fn on_message(&mut self, _f: NodeId, _m: M, _c: &mut Ctx<'_, M>) {}
        }
        let mut sim = Simulation::new(0);
        let id = sim.add_node(
            Busy {
                completions: vec![],
            },
            NodeConfig::default(),
        );
        sim.run_for(Dur::secs(1));
        let b: &Busy = sim.node_ref(id).unwrap();
        assert_eq!(b.completions[0], SimTime::ZERO + Dur::millis(10));
        assert_eq!(b.completions[1], SimTime::ZERO + Dur::millis(20));
    }
}
