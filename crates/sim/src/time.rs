//! Virtual time: instants ([`SimTime`]) and durations ([`Dur`]) with
//! nanosecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in nanoseconds since run start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Raw nanoseconds since run start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Construct from raw nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Seconds since run start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`; zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn nanos(ns: u64) -> Dur {
        Dur(ns)
    }
    /// Construct from microseconds.
    #[inline]
    pub fn micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub fn millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    #[inline]
    pub fn secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }
    /// Construct from whole minutes.
    #[inline]
    pub fn minutes(m: u64) -> Dur {
        Dur::secs(m * 60)
    }
    /// Construct from fractional seconds. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Dur {
        if s <= 0.0 {
            Dur(0)
        } else {
            Dur((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    /// Duration in seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Duration in milliseconds, as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Service time for transferring `bytes` at `rate` bytes/second.
    #[inline]
    pub fn for_bytes(bytes: u64, rate_bytes_per_sec: f64) -> Dur {
        debug_assert!(rate_bytes_per_sec > 0.0);
        Dur::from_secs_f64(bytes as f64 / rate_bytes_per_sec)
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: SimTime) -> Dur {
        self.since(rhs)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Dur::secs(1), Dur::millis(1000));
        assert_eq!(Dur::millis(1), Dur::micros(1000));
        assert_eq!(Dur::micros(1), Dur::nanos(1000));
        assert_eq!(Dur::minutes(2), Dur::secs(120));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + Dur::secs(5);
        assert_eq!(t.as_secs_f64(), 5.0);
        assert_eq!(t - SimTime::ZERO, Dur::secs(5));
        // `since` saturates when the argument is in the future.
        assert_eq!(SimTime::ZERO.since(t), Dur::ZERO);
    }

    #[test]
    fn bytes_at_rate() {
        // 12.5 MB at 12.5 MB/s is one second.
        let d = Dur::for_bytes(12_500_000, 12.5e6);
        assert_eq!(d, Dur::secs(1));
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(Dur::from_secs_f64(-3.0), Dur::ZERO);
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX + Dur::secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{:?}", Dur::nanos(12)), "12ns");
        assert_eq!(format!("{:?}", Dur::micros(5)), "5.0us");
        assert_eq!(format!("{:?}", Dur::millis(7)), "7.00ms");
        assert_eq!(format!("{:?}", Dur::secs(2)), "2.000s");
    }
}
