#![warn(missing_docs)]

//! # sorrento-sim — deterministic discrete-event cluster simulator
//!
//! This crate is the hardware substrate for the Sorrento reproduction. The
//! paper evaluated Sorrento on two physical PC clusters (Fast Ethernet,
//! 10K rpm SCSI disks). We do not have those machines, so every daemon in
//! this repository — storage providers, namespace servers, the NFS and PVFS
//! baselines, and client processes — is written as a sans-IO [`Node`] state
//! machine and executed by the [`Simulation`] engine in virtual time.
//!
//! The engine models exactly the resources whose contention produces the
//! paper's results:
//!
//! * **Network** — per-node full-duplex NIC with finite bandwidth plus a
//!   fixed propagation latency ([`NetConfig`]). A message occupies the
//!   sender's TX queue and the receiver's RX queue for `size / bandwidth`,
//!   so a single 100 Mbit/s link saturates at 12.5 MB/s and N-to-1 traffic
//!   shares the receiver NIC — the effect behind Figure 11's plateaus.
//! * **Disk** — per-node FIFO disk with a positioning cost per request and
//!   a sequential transfer rate ([`DiskConfig`]), tracking used capacity
//!   and busy time for load monitoring.
//! * **CPU** — per-node FIFO service queue charged explicitly by nodes
//!   ([`Ctx::cpu`]), used to model per-request server overheads (e.g. the
//!   ~1300 ops/s namespace server of §4.1.2).
//!
//! Determinism: one seeded RNG drives the whole run and the event queue
//! breaks ties by insertion sequence, so every experiment in this repo is
//! reproducible bit-for-bit from its seed.
//!
//! ```
//! use sorrento_sim::{Simulation, Node, Ctx, NodeId, Payload, Dur, NodeConfig};
//!
//! #[derive(Debug, Clone)]
//! enum Msg { Ping, Pong }
//! impl Payload for Msg {
//!     fn wire_size(&self) -> u64 { 64 }
//! }
//!
//! struct Echo;
//! impl Node<Msg> for Echo {
//!     fn on_message(&mut self, from: NodeId, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
//!         ctx.send(from, Msg::Pong);
//!     }
//! }
//!
//! struct Pinger { peer: NodeId, got: u32 }
//! impl Node<Msg> for Pinger {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
//!         ctx.send(self.peer, Msg::Ping);
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
//!         self.got += 1;
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let echo = sim.add_node(Echo, NodeConfig::default());
//! sim.add_node(Pinger { peer: echo, got: 0 }, NodeConfig::default());
//! sim.run_for(Dur::secs(1));
//! ```

mod disk;
mod engine;
mod metrics;
mod net;
mod node;
mod telemetry;
mod time;

pub use disk::{DiskAccess, DiskConfig, DiskState};
pub use engine::{NodeConfig, Simulation};
pub use metrics::{Histogram, Metrics};
pub use net::NetConfig;
pub use node::{Ctx, Node, NodeId, Payload, TimerId};
pub use telemetry::{EventLog, EventRecord, SpanId, TelemetryEvent};
pub use time::{Dur, SimTime};
