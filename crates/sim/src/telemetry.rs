//! Typed telemetry events recorded in virtual time.
//!
//! Every daemon can call [`crate::Ctx::record`] to append a
//! [`TelemetryEvent`] to its node's bounded [`EventLog`]. Events are
//! allocation-light — payloads are `Copy` primitives and `&'static str`
//! labels — so recording never perturbs the simulated timeline and the
//! event stream is bit-for-bit deterministic from the run seed.
//!
//! A *span* (a plain `u64`, `0` meaning "none") ties together every
//! event caused by one client operation as it flows client → namespace
//! server → storage providers. The harness reconstructs the causal
//! chain of any operation by merging per-node logs in virtual-time
//! order and filtering by span.

use std::collections::VecDeque;
use std::fmt;

use sorrento_json::Json;

use crate::node::NodeId;
use crate::time::SimTime;

/// Identifier tying together all events caused by one client operation.
/// `0` means "no span" (background activity).
pub type SpanId = u64;

/// One telemetry event. Variants cover the cluster's life cycle:
/// failure detection (heartbeats, declared deaths), membership,
/// location-table maintenance, segment life cycle, two-phase commit,
/// replication repair and migration, plus the client-op span markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// A client operation began (recorded by the issuing client).
    OpStart {
        /// The operation's span.
        span: SpanId,
        /// Operation kind (`"create"`, `"read"`, ...).
        kind: &'static str,
    },
    /// A client operation finished.
    OpEnd {
        /// The operation's span.
        span: SpanId,
        /// Operation kind.
        kind: &'static str,
        /// Whether it succeeded.
        ok: bool,
    },
    /// The namespace server checked an operation's version precondition.
    VersionCheck {
        /// Requesting operation's span.
        span: SpanId,
        /// File id bits.
        file: u128,
        /// Version presented by the client.
        version: u64,
        /// Whether the check passed.
        ok: bool,
    },
    /// A client observed a stale location/version and will retry.
    StaleLocation {
        /// The operation's span.
        span: SpanId,
        /// What was stale (`proto::dbg_kind` of the reply).
        kind: &'static str,
    },
    /// A client request timed out.
    Timeout {
        /// The operation's span (0 for background requests).
        span: SpanId,
        /// What timed out (`proto::dbg_kind` of the request).
        kind: &'static str,
    },
    /// This node multicast its periodic heartbeat.
    HeartbeatSend {
        /// Monotonic heartbeat sequence number.
        seq: u64,
    },
    /// A heartbeat from `of` was missed at a sweep.
    HeartbeatMiss {
        /// The silent node.
        of: NodeId,
        /// Consecutive misses so far.
        missed: u32,
    },
    /// `of` was declared dead after too many missed heartbeats.
    DeathDeclared {
        /// The node declared dead.
        of: NodeId,
    },
    /// The SWIM detector put `of` under suspicion (probe and indirect
    /// probes all went unanswered).
    SwimSuspect {
        /// The suspected node.
        of: NodeId,
        /// The incarnation the suspicion names; an `alive` with a higher
        /// incarnation refutes it.
        incarnation: u64,
    },
    /// This node heard itself suspected and refuted the rumor by
    /// bumping its incarnation.
    SwimRefute {
        /// The new (post-bump) incarnation now gossiped as alive.
        incarnation: u64,
    },
    /// `of` joined (or re-joined) the membership view.
    MemberJoin {
        /// The joining node.
        of: NodeId,
    },
    /// `of` left the membership view.
    MemberLeave {
        /// The departing node.
        of: NodeId,
    },
    /// The location table absorbed a batch of segment advertisements.
    LocRefresh {
        /// Entries added or updated by the batch.
        added: u64,
        /// Table size after the refresh.
        total: u64,
    },
    /// Location entries pointing at `of` were purged (node death).
    LocPurge {
        /// The dead node whose entries were dropped.
        of: NodeId,
        /// Number of entries removed.
        removed: u64,
    },
    /// A location miss fell back to querying backup owners.
    BackupQuery {
        /// Requesting operation's span.
        span: SpanId,
        /// Segment id bits.
        seg: u128,
    },
    /// A segment was created on `on`.
    SegCreate {
        /// Creating operation's span.
        span: SpanId,
        /// Segment id bits.
        seg: u128,
        /// The provider holding the new segment.
        on: NodeId,
    },
    /// A segment version was committed (made durable and visible).
    SegCommit {
        /// Committing operation's span.
        span: SpanId,
        /// Segment id bits.
        seg: u128,
        /// Committed version.
        version: u64,
    },
    /// Two-phase commit: a participant voted on prepare.
    TwoPcPrepare {
        /// Coordinating operation's span.
        span: SpanId,
        /// Segment id bits.
        seg: u128,
        /// The participant's vote.
        ok: bool,
    },
    /// Two-phase commit: the decision was commit.
    TwoPcCommit {
        /// Coordinating operation's span.
        span: SpanId,
        /// Segment id bits.
        seg: u128,
    },
    /// Two-phase commit: the decision was abort.
    TwoPcAbort {
        /// Coordinating operation's span.
        span: SpanId,
        /// Segment id bits.
        seg: u128,
        /// Why the transaction aborted.
        reason: &'static str,
    },
    /// Replication repair of a segment began (re-replication after a
    /// death, or anti-entropy catching a lagging replica).
    RepairStart {
        /// Segment id bits.
        seg: u128,
        /// The node receiving the new replica.
        to: NodeId,
    },
    /// Replication repair of a segment completed.
    RepairDone {
        /// Segment id bits.
        seg: u128,
        /// The node that received the replica.
        to: NodeId,
    },
    /// A segment migration decision (capacity/load balancing).
    Migration {
        /// Segment id bits.
        seg: u128,
        /// Source provider.
        from: NodeId,
        /// Destination provider.
        to: NodeId,
        /// Why the segment moved (`"capacity"`, `"load"`, ...).
        reason: &'static str,
    },
    /// A protocol message left this node. Recorded by the real-runtime
    /// mesh only; simulated delivery is already visible to the scheduler.
    MsgSend {
        /// Span carried by the message (0 for background traffic).
        span: SpanId,
        /// Message kind (`proto::dbg_kind`).
        kind: &'static str,
        /// Destination node.
        to: NodeId,
    },
    /// A protocol message arrived at this node (real runtime only).
    MsgRecv {
        /// Span carried by the message (0 for background traffic).
        span: SpanId,
        /// Message kind (`proto::dbg_kind`).
        kind: &'static str,
        /// Originating node.
        from: NodeId,
    },
    /// The chaos shim perturbed an outbound frame.
    ChaosInject {
        /// What happened (`"drop"`, `"duplicate"`, `"delay"`).
        fault: &'static str,
        /// The link's destination node.
        to: NodeId,
    },
    /// A duplicate request was answered from the reply cache instead of
    /// re-executing.
    DedupHit {
        /// The replayed request's span (0 when the request carries none).
        span: SpanId,
        /// Request kind (`proto::dbg_kind`).
        kind: &'static str,
    },
    /// A client resent an in-flight RPC after its resend interval.
    RpcResend {
        /// The operation's span.
        span: SpanId,
        /// Request kind (`proto::dbg_kind`).
        kind: &'static str,
    },
    /// A client encoded Reed-Solomon parity for an erasure-coded file's
    /// commit.
    EcEncode {
        /// The committing operation's span.
        span: SpanId,
        /// The file's index-segment id bits.
        file: u128,
        /// Data shard count.
        k: u8,
        /// Parity shard count.
        m: u8,
        /// Bytes of parity produced (k·m shard traffic is m/k of data).
        parity_bytes: u64,
    },
    /// A degraded read reconstructed missing shards from `k` survivors
    /// inline.
    EcReconstruct {
        /// The reading operation's span.
        span: SpanId,
        /// The file's index-segment id bits.
        file: u128,
        /// Shards that had to be rebuilt.
        lost: u8,
    },
    /// The home host rebuilt a lost shard and installed it on a fresh
    /// provider.
    EcRepair {
        /// The rebuilt shard's segment id bits.
        seg: u128,
        /// The provider that received the reconstructed shard.
        to: NodeId,
    },
}

impl TelemetryEvent {
    /// Stable dotted name of the event kind, used as a counter label and
    /// for grouping in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::OpStart { .. } => "op.start",
            TelemetryEvent::OpEnd { .. } => "op.end",
            TelemetryEvent::VersionCheck { .. } => "ns.version_check",
            TelemetryEvent::StaleLocation { .. } => "client.stale",
            TelemetryEvent::Timeout { .. } => "client.timeout",
            TelemetryEvent::HeartbeatSend { .. } => "hb.send",
            TelemetryEvent::HeartbeatMiss { .. } => "hb.miss",
            TelemetryEvent::DeathDeclared { .. } => "hb.death",
            TelemetryEvent::SwimSuspect { .. } => "swim.suspect",
            TelemetryEvent::SwimRefute { .. } => "swim.refute",
            TelemetryEvent::MemberJoin { .. } => "member.join",
            TelemetryEvent::MemberLeave { .. } => "member.leave",
            TelemetryEvent::LocRefresh { .. } => "loc.refresh",
            TelemetryEvent::LocPurge { .. } => "loc.purge",
            TelemetryEvent::BackupQuery { .. } => "loc.backup_query",
            TelemetryEvent::SegCreate { .. } => "seg.create",
            TelemetryEvent::SegCommit { .. } => "seg.commit",
            TelemetryEvent::TwoPcPrepare { .. } => "2pc.prepare",
            TelemetryEvent::TwoPcCommit { .. } => "2pc.commit",
            TelemetryEvent::TwoPcAbort { .. } => "2pc.abort",
            TelemetryEvent::RepairStart { .. } => "repair.start",
            TelemetryEvent::RepairDone { .. } => "repair.done",
            TelemetryEvent::Migration { .. } => "migration",
            TelemetryEvent::MsgSend { .. } => "msg.send",
            TelemetryEvent::MsgRecv { .. } => "msg.recv",
            TelemetryEvent::ChaosInject { .. } => "chaos.inject",
            TelemetryEvent::DedupHit { .. } => "dedup.hit",
            TelemetryEvent::RpcResend { .. } => "rpc.resend",
            TelemetryEvent::EcEncode { .. } => "ec.encode",
            TelemetryEvent::EcReconstruct { .. } => "ec.reconstruct",
            TelemetryEvent::EcRepair { .. } => "ec.repair",
        }
    }

    /// The span this event belongs to, if any (`None` for background
    /// activity and for span-less variants).
    pub fn span(&self) -> Option<SpanId> {
        let span = match *self {
            TelemetryEvent::OpStart { span, .. }
            | TelemetryEvent::OpEnd { span, .. }
            | TelemetryEvent::VersionCheck { span, .. }
            | TelemetryEvent::StaleLocation { span, .. }
            | TelemetryEvent::Timeout { span, .. }
            | TelemetryEvent::BackupQuery { span, .. }
            | TelemetryEvent::SegCreate { span, .. }
            | TelemetryEvent::SegCommit { span, .. }
            | TelemetryEvent::TwoPcPrepare { span, .. }
            | TelemetryEvent::TwoPcCommit { span, .. }
            | TelemetryEvent::TwoPcAbort { span, .. }
            | TelemetryEvent::MsgSend { span, .. }
            | TelemetryEvent::MsgRecv { span, .. }
            | TelemetryEvent::DedupHit { span, .. }
            | TelemetryEvent::RpcResend { span, .. }
            | TelemetryEvent::EcEncode { span, .. }
            | TelemetryEvent::EcReconstruct { span, .. } => span,
            _ => 0,
        };
        if span == 0 {
            None
        } else {
            Some(span)
        }
    }

    /// Structured JSON form: the stable [`kind`](Self::kind) label, the
    /// owning span (0 when none), and the compact [`fmt::Display`] text. The
    /// text line is the diagnostic surface; payload fields are not
    /// exported individually.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("kind", self.kind())
            .with("span", self.span().unwrap_or(0))
            .with("text", self.to_string())
    }
}

impl fmt::Display for TelemetryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TelemetryEvent::OpStart { span, kind } => {
                write!(f, "op.start span={span} kind={kind}")
            }
            TelemetryEvent::OpEnd { span, kind, ok } => {
                write!(f, "op.end span={span} kind={kind} ok={ok}")
            }
            TelemetryEvent::VersionCheck { span, file, version, ok } => {
                write!(f, "ns.version_check span={span} file={file:x} v={version} ok={ok}")
            }
            TelemetryEvent::StaleLocation { span, kind } => {
                write!(f, "client.stale span={span} kind={kind}")
            }
            TelemetryEvent::Timeout { span, kind } => {
                write!(f, "client.timeout span={span} kind={kind}")
            }
            TelemetryEvent::HeartbeatSend { seq } => write!(f, "hb.send seq={seq}"),
            TelemetryEvent::HeartbeatMiss { of, missed } => {
                write!(f, "hb.miss of={of} missed={missed}")
            }
            TelemetryEvent::DeathDeclared { of } => write!(f, "hb.death of={of}"),
            TelemetryEvent::SwimSuspect { of, incarnation } => {
                write!(f, "swim.suspect of={of} inc={incarnation}")
            }
            TelemetryEvent::SwimRefute { incarnation } => {
                write!(f, "swim.refute inc={incarnation}")
            }
            TelemetryEvent::MemberJoin { of } => write!(f, "member.join of={of}"),
            TelemetryEvent::MemberLeave { of } => write!(f, "member.leave of={of}"),
            TelemetryEvent::LocRefresh { added, total } => {
                write!(f, "loc.refresh added={added} total={total}")
            }
            TelemetryEvent::LocPurge { of, removed } => {
                write!(f, "loc.purge of={of} removed={removed}")
            }
            TelemetryEvent::BackupQuery { span, seg } => {
                write!(f, "loc.backup_query span={span} seg={seg:x}")
            }
            TelemetryEvent::SegCreate { span, seg, on } => {
                write!(f, "seg.create span={span} seg={seg:x} on={on}")
            }
            TelemetryEvent::SegCommit { span, seg, version } => {
                write!(f, "seg.commit span={span} seg={seg:x} v={version}")
            }
            TelemetryEvent::TwoPcPrepare { span, seg, ok } => {
                write!(f, "2pc.prepare span={span} seg={seg:x} ok={ok}")
            }
            TelemetryEvent::TwoPcCommit { span, seg } => {
                write!(f, "2pc.commit span={span} seg={seg:x}")
            }
            TelemetryEvent::TwoPcAbort { span, seg, reason } => {
                write!(f, "2pc.abort span={span} seg={seg:x} reason={reason}")
            }
            TelemetryEvent::RepairStart { seg, to } => {
                write!(f, "repair.start seg={seg:x} to={to}")
            }
            TelemetryEvent::RepairDone { seg, to } => {
                write!(f, "repair.done seg={seg:x} to={to}")
            }
            TelemetryEvent::Migration { seg, from, to, reason } => {
                write!(f, "migration seg={seg:x} {from}->{to} reason={reason}")
            }
            TelemetryEvent::MsgSend { span, kind, to } => {
                write!(f, "msg.send span={span} kind={kind} to={to}")
            }
            TelemetryEvent::MsgRecv { span, kind, from } => {
                write!(f, "msg.recv span={span} kind={kind} from={from}")
            }
            TelemetryEvent::ChaosInject { fault, to } => {
                write!(f, "chaos.inject fault={fault} to={to}")
            }
            TelemetryEvent::DedupHit { span, kind } => {
                write!(f, "dedup.hit span={span} kind={kind}")
            }
            TelemetryEvent::RpcResend { span, kind } => {
                write!(f, "rpc.resend span={span} kind={kind}")
            }
            TelemetryEvent::EcEncode { span, file, k, m, parity_bytes } => {
                write!(f, "ec.encode span={span} file={file:x} k={k} m={m} parity={parity_bytes}")
            }
            TelemetryEvent::EcReconstruct { span, file, lost } => {
                write!(f, "ec.reconstruct span={span} file={file:x} lost={lost}")
            }
            TelemetryEvent::EcRepair { seg, to } => {
                write!(f, "ec.repair seg={seg:x} to={to}")
            }
        }
    }
}

/// One recorded event with its virtual timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual time of the recording.
    pub at: SimTime,
    /// The event.
    pub ev: TelemetryEvent,
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12} ns] {}", self.at.nanos(), self.ev)
    }
}

impl EventRecord {
    /// JSON form of the event plus its timestamp (`at_ns`). In a sim
    /// the timestamp is virtual; in the real runtime it is monotonic
    /// nanoseconds since process start.
    pub fn to_json(&self) -> Json {
        self.ev.to_json().with("at_ns", self.at.nanos())
    }
}

/// A bounded per-node ring buffer of [`EventRecord`]s. When full, the
/// oldest record is dropped and [`EventLog::dropped`] counts it, so a
/// long soak run keeps a recent window instead of growing unboundedly.
#[derive(Debug, Clone)]
pub struct EventLog {
    buf: VecDeque<EventRecord>,
    cap: usize,
    dropped: u64,
}

impl EventLog {
    /// Default per-node capacity (records, not bytes).
    pub const DEFAULT_CAP: usize = 16 * 1024;

    /// An empty log holding at most `cap` records (`cap == 0` disables
    /// recording entirely).
    pub fn new(cap: usize) -> EventLog {
        EventLog {
            buf: VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest if the log is full.
    pub fn push(&mut self, at: SimTime, ev: TelemetryEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(EventRecord { at, ev });
    }

    /// Records currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records evicted (or refused, when capacity is 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// JSON form of the whole ring: capacity, retention counters and
    /// every retained record oldest-first. This is the flight-dump body.
    pub fn to_json(&self) -> Json {
        let mut events = Json::arr();
        for rec in self.iter() {
            events.push(rec.to_json());
        }
        Json::obj()
            .with("cap", self.cap)
            .with("len", self.len())
            .with("dropped", self.dropped)
            .with("events", events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = EventLog::new(3);
        for seq in 0..5 {
            log.push(SimTime::from_nanos(seq), TelemetryEvent::HeartbeatSend { seq });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let seqs: Vec<u64> = log
            .iter()
            .map(|r| match r.ev {
                TelemetryEvent::HeartbeatSend { seq } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut log = EventLog::new(0);
        log.push(SimTime::ZERO, TelemetryEvent::MemberJoin { of: NodeId::from_index(1) });
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn spans_are_extracted() {
        let with = TelemetryEvent::TwoPcCommit { span: 9, seg: 1 };
        let without = TelemetryEvent::HeartbeatSend { seq: 0 };
        let zero = TelemetryEvent::OpStart { span: 0, kind: "read" };
        assert_eq!(with.span(), Some(9));
        assert_eq!(without.span(), None);
        assert_eq!(zero.span(), None);
    }

    #[test]
    fn display_is_compact_and_stable() {
        let ev = TelemetryEvent::TwoPcAbort { span: 3, seg: 0xabc, reason: "vote" };
        assert_eq!(ev.to_string(), "2pc.abort span=3 seg=abc reason=vote");
        let rec = EventRecord { at: SimTime::from_nanos(1500), ev };
        assert_eq!(rec.to_string(), "[        1500 ns] 2pc.abort span=3 seg=abc reason=vote");
        assert_eq!(ev.kind(), "2pc.abort");
    }
}
