//! Network model: per-node full-duplex NIC with finite bandwidth plus a
//! fixed switch/propagation latency.
//!
//! The clusters in the paper connect every node through Fast Ethernet
//! (100 Mbit/s ≈ 12.5 MB/s) to non-blocking switches, and the paper notes
//! that "none of the experiments would saturate the switches". The
//! bottleneck is therefore always an endpoint NIC, which is exactly what
//! this model captures: a message of size `s` occupies the sender's TX
//! queue for `s / bandwidth`, travels for `latency`, and occupies the
//! receiver's RX queue for `s / bandwidth`. N senders targeting one
//! receiver share the receiver NIC, producing the aggregate-bandwidth
//! plateaus of Figure 11.

use crate::time::{Dur, SimTime};

/// Static NIC parameters for one node.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Link bandwidth in bytes per second (each direction).
    pub bandwidth: f64,
    /// One-way latency (propagation + switching + protocol stack).
    pub latency: Dur,
}

impl NetConfig {
    /// Fast Ethernet as deployed in the paper's clusters: 100 Mbit/s with
    /// ~150 µs one-way latency (measured LAN RTTs of that era were
    /// 200–400 µs).
    pub fn fast_ethernet() -> NetConfig {
        NetConfig {
            bandwidth: 12.5e6,
            latency: Dur::micros(150),
        }
    }

    /// Gigabit Ethernet (used for the inter-switch links in cluster B).
    pub fn gigabit_ethernet() -> NetConfig {
        NetConfig {
            bandwidth: 125.0e6,
            latency: Dur::micros(100),
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::fast_ethernet()
    }
}

/// Dynamic NIC state for one node: when each direction becomes free.
#[derive(Debug, Clone)]
pub struct Nic {
    pub(crate) config: NetConfig,
    tx_free: SimTime,
    rx_free: SimTime,
    /// Total bytes sent/received, for reporting.
    pub tx_bytes: u64,
    pub rx_bytes: u64,
}

impl Nic {
    pub(crate) fn new(config: NetConfig) -> Nic {
        Nic {
            config,
            tx_free: SimTime::ZERO,
            rx_free: SimTime::ZERO,
            tx_bytes: 0,
            rx_bytes: 0,
        }
    }

    /// Occupy the TX queue for a message of `size` handed off at `now`;
    /// returns the instant the last byte leaves the NIC.
    pub(crate) fn transmit(&mut self, now: SimTime, size: u64) -> SimTime {
        let start = self.tx_free.max(now);
        let end = start + Dur::for_bytes(size, self.config.bandwidth);
        self.tx_free = end;
        self.tx_bytes += size;
        end
    }

    /// Occupy the RX queue for a message handed to the network at `at`
    /// whose last byte could arrive at `earliest` (sender TX end +
    /// latency); returns the delivery instant.
    ///
    /// The receiver's work is anchored at `at`, **not** at `earliest`: a
    /// message from a backlogged sender must not reserve this NIC while
    /// the sender is still draining (real networks interleave other
    /// senders' packets into that gap).
    pub(crate) fn receive(&mut self, at: SimTime, earliest: SimTime, size: u64) -> SimTime {
        self.rx_free = self.rx_free.max(at) + Dur::for_bytes(size, self.config.bandwidth);
        self.rx_bytes += size;
        earliest.max(self.rx_free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> Nic {
        Nic::new(NetConfig {
            bandwidth: 1e6, // 1 MB/s for round numbers
            latency: Dur::millis(1),
        })
    }

    #[test]
    fn single_flow_runs_at_line_rate() {
        let mut tx = nic();
        let mut rx = nic();
        let lat = Dur::millis(1);
        // Two back-to-back 1 MB messages: second delivery exactly 1 s after
        // the first — line-rate 1 MB/s.
        let t0 = SimTime::ZERO;
        let e1 = tx.transmit(t0, 1_000_000);
        let d1 = rx.receive(t0, e1 + lat, 1_000_000);
        let e2 = tx.transmit(t0, 1_000_000);
        let d2 = rx.receive(t0, e2 + lat, 1_000_000);
        assert_eq!(d1, t0 + Dur::secs(1) + lat);
        assert_eq!(d2 - d1, Dur::secs(1));
    }

    #[test]
    fn receiver_nic_is_shared_by_concurrent_senders() {
        let mut tx_a = nic();
        let mut tx_b = nic();
        let mut rx = nic();
        let lat = Dur::millis(1);
        // Both senders transmit 1 MB starting at t=0. Their TX queues drain
        // in parallel, but the receiver serializes: aggregate ingress is
        // still 1 MB/s.
        let t0 = SimTime::ZERO;
        let ea = tx_a.transmit(t0, 1_000_000);
        let eb = tx_b.transmit(t0, 1_000_000);
        let da = rx.receive(t0, ea + lat, 1_000_000);
        let db = rx.receive(t0, eb + lat, 1_000_000);
        assert_eq!(da, t0 + Dur::secs(1) + lat);
        assert_eq!(db, t0 + Dur::secs(2)); // receiver-serialized
    }

    #[test]
    fn idle_receiver_adds_no_delay() {
        let mut tx = nic();
        let mut rx = nic();
        let lat = Dur::millis(1);
        let t0 = SimTime::ZERO + Dur::secs(10);
        let e = tx.transmit(t0, 500_000);
        let d = rx.receive(t0, e + lat, 500_000);
        // Pipelined with the sender: delivery = tx end + latency.
        assert_eq!(d, e + lat);
    }

    #[test]
    fn backlogged_sender_does_not_reserve_receiver() {
        // Sender A's NIC is busy for 8 s; its small message to R arrives
        // late — but R's NIC must stay available: a prompt message from B
        // right after is NOT queued behind A's sender-side delay.
        let mut tx_a = nic();
        let mut tx_b = nic();
        let mut rx = nic();
        let lat = Dur::millis(1);
        tx_a.transmit(SimTime::ZERO, 8_000_000); // 8 s backlog
        let ea = tx_a.transmit(SimTime::ZERO, 200);
        let da = rx.receive(SimTime::ZERO, ea + lat, 200);
        assert!(da >= SimTime::ZERO + Dur::secs(8));
        let eb = tx_b.transmit(SimTime::ZERO + Dur::millis(10), 200);
        let db = rx.receive(SimTime::ZERO + Dur::millis(10), eb + lat, 200);
        // B's delivery is prompt despite A's pending slow message.
        assert!(db < SimTime::ZERO + Dur::millis(20), "db = {db:?}");
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut tx = nic();
        tx.transmit(SimTime::ZERO, 100);
        tx.transmit(SimTime::ZERO, 200);
        assert_eq!(tx.tx_bytes, 300);
    }
}
