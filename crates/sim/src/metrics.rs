//! Run-wide metrics registry: counters (string- and static-labeled),
//! gauges, log-bucketed latency histograms and named time series — all
//! recorded in virtual time. The experiment harness reads these after a
//! run to print the paper's tables and figures, and exports them as
//! JSON through [`Metrics::to_json`].

use std::collections::BTreeMap;

use sorrento_json::Json;

use crate::time::SimTime;

/// Metrics sink shared by all nodes in a simulation.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    labeled: BTreeMap<(&'static str, &'static str), u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<(SimTime, f64)>>,
}

impl Metrics {
    /// Create an empty sink.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `by` to counter `name`, creating it at zero if absent.
    pub fn count(&mut self, name: &str, by: u64) {
        // `entry` wants an owned key; probe first so the hot path (an
        // existing counter) allocates nothing.
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            *self.counters.entry(name.to_owned()).or_insert(0) += by;
        }
    }

    /// Read counter `name` (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Add `by` to the statically-labeled counter `(name, label)`.
    /// Allocation-free: both parts are `&'static str`, so hot paths
    /// (per-op stale/timeout accounting) never build key strings.
    pub fn count_labeled(&mut self, name: &'static str, label: &'static str, by: u64) {
        *self.labeled.entry((name, label)).or_insert(0) += by;
    }

    /// Read labeled counter `(name, label)` (zero if never written).
    pub fn counter_labeled(&self, name: &'static str, label: &'static str) -> u64 {
        self.labeled.get(&(name, label)).copied().unwrap_or(0)
    }

    /// Sum of every label under `name`.
    pub fn counter_labeled_total(&self, name: &'static str) -> u64 {
        self.labeled
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Iterate over all labeled counters in `(name, label)` order.
    pub fn labeled_counters(&self) -> impl Iterator<Item = (&'static str, &'static str, u64)> + '_ {
        self.labeled.iter().map(|(&(n, l), &v)| (n, l, v))
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_owned(), value);
        }
    }

    /// Read gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one observation (e.g. a latency in nanoseconds) into
    /// histogram `name`, creating it if absent.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            self.histograms
                .entry(name.to_owned())
                .or_default()
                .observe(value);
        }
    }

    /// Read histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Append a `(time, value)` point to series `name`.
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        if let Some(s) = self.series.get_mut(name) {
            s.push((at, value));
        } else {
            self.series
                .entry(name.to_owned())
                .or_default()
                .push((at, value));
        }
    }

    /// Read series `name` (empty slice if never written).
    pub fn series(&self, name: &str) -> &[(SimTime, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Names of all recorded series.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Export the registry as a JSON object:
    ///
    /// ```json
    /// {
    ///   "counters":   { "<name>": 3, ... },
    ///   "labeled":    { "<name>": { "<label>": 2, ... }, ... },
    ///   "gauges":     { "<name>": 8.0, ... },
    ///   "histograms": { "<name>": { "count": 2, "min": 1, "max": 9,
    ///                               "mean": 5.0, "p50": 5,
    ///                               "p95": 9, "p99": 9 }, ... },
    ///   "series":     { "<name>": 120, ... }
    /// }
    /// ```
    ///
    /// Series export only point counts (raw points can be huge); figure
    /// binaries that need them read [`Metrics::series`] directly.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.set(k, *v);
        }
        // `labeled` is ordered by (name, label): emit one nested object
        // per run of equal names.
        let mut labeled = Json::obj();
        let mut iter = self.labeled.iter().peekable();
        while let Some((&(name, label), &v)) = iter.next() {
            let mut inner = Json::obj();
            inner.set(label, v);
            while let Some(&(&(n2, l2), &v2)) = iter.peek() {
                if n2 != name {
                    break;
                }
                inner.set(l2, v2);
                iter.next();
            }
            labeled.set(name, inner);
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges.set(k, *v);
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.histograms {
            histograms.set(k, h.to_json());
        }
        let mut series = Json::obj();
        for (k, pts) in &self.series {
            series.set(k, pts.len() as u64);
        }
        Json::obj()
            .with("counters", counters)
            .with("labeled", labeled)
            .with("gauges", gauges)
            .with("histograms", histograms)
            .with("series", series)
    }
}

/// Values below this are given exact one-per-value buckets.
const LINEAR_CUTOVER: u64 = 16;
/// Sub-buckets per power of two above the cutover (3 mantissa bits →
/// ≤ 12.5 % relative quantile error) with a fixed 496-slot table.
const SUBBUCKETS: usize = 8;
const NUM_BUCKETS: usize = LINEAR_CUTOVER as usize + (64 - 4) * SUBBUCKETS;

fn bucket_of(v: u64) -> usize {
    if v < LINEAR_CUTOVER {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // ≥ 4
        let mant = ((v >> (exp - 3)) & 0x7) as usize;
        LINEAR_CUTOVER as usize + (exp - 4) * SUBBUCKETS + mant
    }
}

/// Inclusive-lo / exclusive-hi value range covered by bucket `i` (the
/// last bucket's `hi` wraps to 0 — it is never used as a bound).
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < LINEAR_CUTOVER as usize {
        (i as u64, i as u64 + 1)
    } else {
        let exp = (i - LINEAR_CUTOVER as usize) / SUBBUCKETS + 4;
        let mant = ((i - LINEAR_CUTOVER as usize) % SUBBUCKETS) as u64;
        let lo = (SUBBUCKETS as u64 + mant) << (exp - 3);
        let hi = lo.wrapping_add(1u64 << (exp - 3));
        (lo, hi)
    }
}

/// A log-bucketed histogram of `u64` observations (latencies in ns).
///
/// Buckets are exact below 16 and log-spaced with 8 sub-buckets per
/// octave above, so quantile estimates carry at most ~12.5 % relative
/// error while the whole structure is one fixed-size array — cheap
/// enough to keep one histogram per operation kind.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`): the midpoint of the
    /// bucket holding the rank-`⌈q·count⌉` observation, clamped into
    /// `[min, max]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = if hi > lo { lo + (hi - lo) / 2 } else { lo };
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Summary object used inside [`Metrics::to_json`].
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", self.count)
            .with("min", self.min().unwrap_or(0))
            .with("max", self.max().unwrap_or(0))
            .with("mean", self.mean().unwrap_or(0.0))
            .with("p50", self.p50().unwrap_or(0))
            .with("p95", self.p95().unwrap_or(0))
            .with("p99", self.p99().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count("reads", 1);
        m.count("reads", 2);
        assert_eq!(m.counter("reads"), 3);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn labeled_counters_accumulate_without_key_strings() {
        let mut m = Metrics::new();
        m.count_labeled("client.stale", "read", 1);
        m.count_labeled("client.stale", "read", 1);
        m.count_labeled("client.stale", "write", 5);
        assert_eq!(m.counter_labeled("client.stale", "read"), 2);
        assert_eq!(m.counter_labeled("client.stale", "write"), 5);
        assert_eq!(m.counter_labeled("client.stale", "sync"), 0);
        assert_eq!(m.counter_labeled_total("client.stale"), 7);
        let all: Vec<_> = m.labeled_counters().collect();
        assert_eq!(
            all,
            vec![("client.stale", "read", 2), ("client.stale", "write", 5)]
        );
    }

    #[test]
    fn gauges_take_last_write() {
        let mut m = Metrics::new();
        assert_eq!(m.gauge("q"), None);
        m.gauge_set("q", 3.0);
        m.gauge_set("q", 7.5);
        assert_eq!(m.gauge("q"), Some(7.5));
    }

    #[test]
    fn series_preserve_order() {
        let mut m = Metrics::new();
        m.record("rate", SimTime::ZERO, 1.0);
        m.record("rate", SimTime::from_nanos(5), 2.0);
        let s = m.series("rate");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].1, 1.0);
        assert_eq!(s[1].1, 2.0);
        assert!(m.series("absent").is_empty());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut m = Metrics::new();
        m.count("b", 1);
        m.count("a", 1);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn histogram_buckets_are_exhaustive_and_monotonic() {
        // Every bucket's bounds tile the u64 line in order.
        let mut expect_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i}");
            assert!(hi > lo || i == NUM_BUCKETS - 1);
            expect_lo = hi;
        }
        // And bucket_of agrees with the bounds.
        for v in [0, 1, 15, 16, 17, 100, 1_000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let i = bucket_of(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v, "v={v} lo={lo}");
            assert!(v < hi || hi <= lo, "v={v} hi={hi}");
        }
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.observe(v * 1_000);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), Some(1_000));
        assert_eq!(h.max(), Some(10_000_000));
        let p50 = h.p50().unwrap() as f64;
        let p95 = h.p95().unwrap() as f64;
        let p99 = h.p99().unwrap() as f64;
        assert!((p50 - 5_000_000.0).abs() / 5_000_000.0 < 0.13, "p50={p50}");
        assert!((p95 - 9_500_000.0).abs() / 9_500_000.0 < 0.13, "p95={p95}");
        assert!((p99 - 9_900_000.0).abs() / 9_900_000.0 < 0.13, "p99={p99}");
        let mean = h.mean().unwrap();
        assert!((mean - 5_000_500.0).abs() < 1.0);
    }

    #[test]
    fn histogram_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), None);
        let mut h = Histogram::new();
        h.observe(42);
        assert_eq!(h.p50(), Some(42));
        assert_eq!(h.p99(), Some(42));
        h.observe(u64::MAX);
        assert_eq!(h.min(), Some(42));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn json_export_shape() {
        let mut m = Metrics::new();
        m.count("ops", 3);
        m.count_labeled("client.stale", "read", 2);
        m.gauge_set("providers.live", 8.0);
        m.observe("op.read.latency_ns", 1_000);
        m.observe("op.read.latency_ns", 2_000);
        m.record("load", SimTime::ZERO, 0.5);
        let j = Json::parse(&m.to_json().encode()).unwrap();
        assert_eq!(j.get("counters").unwrap().get("ops").unwrap().as_u64(), Some(3));
        assert_eq!(
            j.get("labeled")
                .unwrap()
                .get("client.stale")
                .unwrap()
                .get("read")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            j.get("gauges").unwrap().get("providers.live").unwrap().as_f64(),
            Some(8.0)
        );
        let h = j.get("histograms").unwrap().get("op.read.latency_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert!(h.get("p99").unwrap().as_u64().unwrap() >= 1_000);
        assert_eq!(j.get("series").unwrap().get("load").unwrap().as_u64(), Some(1));
    }
}
