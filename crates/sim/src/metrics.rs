//! Run-wide metrics: counters and named time series, recorded in virtual
//! time. The experiment harness reads these after a run to print the
//! paper's tables and figures.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// Metrics sink shared by all nodes in a simulation.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<(SimTime, f64)>>,
}

impl Metrics {
    /// Create an empty sink.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `by` to counter `name`, creating it at zero if absent.
    pub fn count(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Read counter `name` (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Append a `(time, value)` point to series `name`.
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        if let Some(s) = self.series.get_mut(name) {
            s.push((at, value));
        } else {
            self.series.insert(name.to_owned(), vec![(at, value)]);
        }
    }

    /// Read series `name` (empty slice if never written).
    pub fn series(&self, name: &str) -> &[(SimTime, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Names of all recorded series.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count("reads", 1);
        m.count("reads", 2);
        assert_eq!(m.counter("reads"), 3);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn series_preserve_order() {
        let mut m = Metrics::new();
        m.record("rate", SimTime::ZERO, 1.0);
        m.record("rate", SimTime::from_nanos(5), 2.0);
        let s = m.series("rate");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].1, 1.0);
        assert_eq!(s[1].1, 2.0);
        assert!(m.series("absent").is_empty());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut m = Metrics::new();
        m.count("b", 1);
        m.count("a", 1);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
