//! Disk model: per-node FIFO disk with positioning cost, sequential
//! transfer rate, and capacity accounting.
//!
//! The model is deliberately coarse — a request is charged
//! `positioning + bytes / transfer_rate` and requests on one disk are
//! serialized — because the phenomena the paper measures (I/O-wait load,
//! queueing under saturation, storage utilization) depend only on service
//! time and occupancy, not on head scheduling details.

use crate::time::{Dur, SimTime};

/// Kind of disk access, selecting the positioning cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskAccess {
    /// Random access: full average seek + rotational latency.
    Random,
    /// Sequential continuation: track-to-track positioning only.
    Sequential,
    /// Metadata update that must be synced (e.g. a WAL append): charged the
    /// sequential positioning cost plus the sync overhead.
    Sync,
}

/// Static parameters of one node's disk (defaults model a 10K rpm SCSI
/// drive of the paper's era, e.g. Seagate Cheetah ST373405: ~5 ms seek,
/// 3 ms half-rotation, ~40 MB/s media rate).
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Positioning cost for a random request (seek + rotational latency).
    pub positioning: Dur,
    /// Positioning cost for a sequential continuation.
    pub seq_positioning: Dur,
    /// Extra cost of a synchronous metadata write (forced platter sync).
    pub sync_overhead: Dur,
    /// Media transfer rate in bytes/second.
    pub transfer_rate: f64,
    /// Usable capacity in bytes.
    pub capacity: u64,
}

impl DiskConfig {
    /// 10K rpm SCSI drive as used in clusters A/B of the paper.
    pub fn scsi_10krpm(capacity: u64) -> DiskConfig {
        DiskConfig {
            positioning: Dur::micros(8_000),
            seq_positioning: Dur::micros(600),
            sync_overhead: Dur::micros(4_000),
            transfer_rate: 40.0e6,
            capacity,
        }
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        // 72 GB, matching the majority drives of cluster B.
        DiskConfig::scsi_10krpm(72 * 1_000_000_000)
    }
}

/// Errors from capacity accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFull {
    /// Bytes requested by the failed allocation.
    pub requested: u64,
    /// Bytes that were still free.
    pub free: u64,
}

impl std::fmt::Display for DiskFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "disk full: requested {} bytes, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for DiskFull {}

/// Dynamic disk state for one node.
#[derive(Debug, Clone)]
pub struct DiskState {
    config: DiskConfig,
    busy_until: SimTime,
    used: u64,
    /// Cumulative busy time, for I/O-wait load sampling.
    busy_accum: Dur,
    /// Start of the current sampling window.
    window_start: SimTime,
    /// Busy time accumulated before the current window (already sampled).
    sampled_busy: Dur,
}

impl DiskState {
    /// A fresh, empty disk with this hardware profile.
    pub fn new(config: DiskConfig) -> DiskState {
        DiskState {
            config,
            busy_until: SimTime::ZERO,
            used: 0,
            busy_accum: Dur::ZERO,
            window_start: SimTime::ZERO,
            sampled_busy: Dur::ZERO,
        }
    }

    /// Submit a request of `bytes` at `now`; returns its completion time.
    /// Requests are serialized FIFO behind earlier ones.
    pub fn submit(&mut self, now: SimTime, bytes: u64, access: DiskAccess) -> SimTime {
        let positioning = match access {
            DiskAccess::Random => self.config.positioning,
            DiskAccess::Sequential => self.config.seq_positioning,
            DiskAccess::Sync => self.config.seq_positioning + self.config.sync_overhead,
        };
        let service = positioning + Dur::for_bytes(bytes, self.config.transfer_rate);
        let start = self.busy_until.max(now);
        self.busy_until = start + service;
        self.busy_accum += service;
        self.busy_until
    }

    /// Reserve `bytes` of capacity.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), DiskFull> {
        let free = self.config.capacity.saturating_sub(self.used);
        if bytes > free {
            return Err(DiskFull {
                requested: bytes,
                free,
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Release `bytes` of capacity (saturating at zero).
    pub fn free(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Total usable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.config.capacity
    }

    /// Bytes still free.
    pub fn available(&self) -> u64 {
        self.config.capacity.saturating_sub(self.used)
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.config.capacity == 0 {
            return 0.0;
        }
        self.used as f64 / self.config.capacity as f64
    }

    /// I/O-wait fraction since the previous call (the paper's per-node `l`
    /// load measure). Resets the sampling window. Clamped to `[0, 1]`.
    pub fn sample_io_wait(&mut self, now: SimTime) -> f64 {
        let window = now.since(self.window_start);
        let new_busy = self.busy_accum - self.sampled_busy;
        self.sampled_busy = self.busy_accum;
        self.window_start = now;
        if window == Dur::ZERO {
            return 0.0;
        }
        (new_busy.as_secs_f64() / window.as_secs_f64()).clamp(0.0, 1.0)
    }

    /// Wipe allocation state (node re-formatted). Queue timing survives.
    pub fn wipe(&mut self) {
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskState {
        DiskState::new(DiskConfig {
            positioning: Dur::millis(8),
            seq_positioning: Dur::micros(600),
            sync_overhead: Dur::millis(4),
            transfer_rate: 40.0e6,
            capacity: 1000,
        })
    }

    #[test]
    fn requests_serialize_fifo() {
        let mut d = disk();
        let t1 = d.submit(SimTime::ZERO, 0, DiskAccess::Random);
        let t2 = d.submit(SimTime::ZERO, 0, DiskAccess::Random);
        assert_eq!(t1, SimTime::ZERO + Dur::millis(8));
        assert_eq!(t2, SimTime::ZERO + Dur::millis(16));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let mut d = disk();
        let t = d.submit(SimTime::ZERO, 40_000_000, DiskAccess::Sequential);
        // 600 µs positioning + 1 s transfer.
        assert_eq!(t, SimTime::ZERO + Dur::micros(600) + Dur::secs(1));
    }

    #[test]
    fn sync_access_pays_sync_overhead() {
        let mut d = disk();
        let t = d.submit(SimTime::ZERO, 0, DiskAccess::Sync);
        assert_eq!(t, SimTime::ZERO + Dur::micros(600) + Dur::millis(4));
    }

    #[test]
    fn capacity_accounting() {
        let mut d = disk();
        d.alloc(600).unwrap();
        assert_eq!(d.used(), 600);
        assert_eq!(d.available(), 400);
        let err = d.alloc(500).unwrap_err();
        assert_eq!(err, DiskFull { requested: 500, free: 400 });
        d.free(200);
        assert_eq!(d.used(), 400);
        d.alloc(500).unwrap();
        assert!((d.utilization() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn free_saturates() {
        let mut d = disk();
        d.alloc(10).unwrap();
        d.free(100);
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn io_wait_sampling() {
        let mut d = disk();
        // 8 ms of busy time in a 16 ms window = 50% I/O wait.
        d.submit(SimTime::ZERO, 0, DiskAccess::Random);
        let w = d.sample_io_wait(SimTime::ZERO + Dur::millis(16));
        assert!((w - 0.5).abs() < 1e-6);
        // Nothing new submitted: next window reads zero.
        let w2 = d.sample_io_wait(SimTime::ZERO + Dur::millis(32));
        assert_eq!(w2, 0.0);
    }

    #[test]
    fn io_wait_clamps_at_one() {
        let mut d = disk();
        for _ in 0..100 {
            d.submit(SimTime::ZERO, 0, DiskAccess::Random);
        }
        let w = d.sample_io_wait(SimTime::ZERO + Dur::millis(1));
        assert_eq!(w, 1.0);
    }

    #[test]
    fn wipe_clears_usage() {
        let mut d = disk();
        d.alloc(700).unwrap();
        d.wipe();
        assert_eq!(d.used(), 0);
    }
}
