//! The sans-IO node abstraction: every daemon in the system (storage
//! provider, namespace server, baseline servers, client processes) is a
//! [`Node`] state machine that reacts to messages and timers through a
//! [`Ctx`] handle supplied by the engine.

use std::any::Any;
use std::fmt;

use rand::rngs::SmallRng;

use crate::disk::{DiskAccess, DiskState};
use crate::engine::EngineState;
use crate::telemetry::TelemetryEvent;
use crate::time::{Dur, SimTime};
use crate::Metrics;

/// Identity of a node within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Construct from a raw index. Only meaningful for ids previously
    /// handed out by the same simulation.
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle for a pending timer, usable with [`Ctx::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// The raw timer sequence number. Non-simulated transports (real
    /// runtimes driving the same state machines) need to mint and
    /// compare timer handles themselves.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Construct from a raw sequence number previously handed out by
    /// the same timer source.
    pub fn from_raw(raw: u64) -> TimerId {
        TimerId(raw)
    }
}

/// A message type usable on the simulated network.
pub trait Payload: Clone + fmt::Debug + 'static {
    /// Bytes this message occupies on the wire (headers + payload). For
    /// synthetic bulk data this is the *modeled* length, which is what the
    /// NIC charges.
    fn wire_size(&self) -> u64;
}

/// A daemon state machine driven by the simulation engine.
///
/// Timers are delivered through [`Node::on_message`] with `from` equal to
/// the node's own id, so message enums encode timer meanings as ordinary
/// variants.
pub trait Node<M: Payload>: Any {
    /// Called once when the node comes online (including after a restart).
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called for every delivered message and fired timer.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>);

    /// Called when the node crashes: volatile (soft) state must be dropped
    /// here; durable (on-disk) state survives into a later restart.
    fn on_crash(&mut self) {}
}

/// The node's window onto the engine during a callback: virtual clock,
/// network, timers, its own disk, the run RNG and the metrics sink.
pub struct Ctx<'a, M: Payload> {
    pub(crate) id: NodeId,
    pub(crate) engine: &'a mut EngineState<M>,
}

impl<'a, M: Payload> Ctx<'a, M> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now
    }

    /// Send `msg` to `dst` now. The message is charged against both NICs;
    /// if `dst` is dead at delivery time it is silently dropped (the
    /// sender learns about failures only through its own timeouts, as on a
    /// real network).
    pub fn send(&mut self, dst: NodeId, msg: M) {
        let now = self.engine.now;
        self.engine.unicast(now, self.id, dst, msg);
    }

    /// Send `msg` to `dst`, handing it to the NIC at time `at` (≥ now).
    /// Used to emit a reply after a CPU or disk completion.
    pub fn send_at(&mut self, at: SimTime, dst: NodeId, msg: M) {
        let at = at.max(self.engine.now);
        self.engine.unicast(at, self.id, dst, msg);
    }

    /// Multicast `msg` to every live node except this one. Ethernet
    /// multicast: the sender's NIC is charged once; every receiver's NIC
    /// is charged individually.
    pub fn multicast(&mut self, msg: M) {
        let now = self.engine.now;
        self.engine.multicast(now, self.id, msg);
    }

    /// Deliver `msg` back to this node after `delay`. Returns a handle
    /// usable with [`Ctx::cancel_timer`]. Timer delivery bypasses the NIC.
    pub fn set_timer(&mut self, delay: Dur, msg: M) -> TimerId {
        self.engine.set_timer(self.id, delay, msg)
    }

    /// Cancel a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.engine.cancel_timer(id);
    }

    /// Charge `service` of CPU time on this node's FIFO CPU queue and
    /// return the completion instant (pass it to [`Ctx::send_at`]).
    pub fn cpu(&mut self, service: Dur) -> SimTime {
        self.engine.cpu(self.id, service)
    }

    /// Submit a disk request on this node's disk; returns completion time.
    pub fn disk_submit(&mut self, bytes: u64, access: DiskAccess) -> SimTime {
        let now = self.engine.now;
        self.engine.slots[self.id.index()]
            .disk
            .submit(now, bytes, access)
    }

    /// Direct access to this node's disk state (capacity accounting,
    /// load sampling).
    pub fn disk(&mut self) -> &mut DiskState {
        &mut self.engine.slots[self.id.index()].disk
    }

    /// The physical machine `id` runs on (infrastructure knowledge, like
    /// an IP address: used by the locality-driven placement policy to tell
    /// which provider is co-located with a requesting client).
    pub fn machine_of(&self, id: NodeId) -> u32 {
        self.engine.machine_of(id)
    }

    /// The run's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.engine.rng
    }

    /// The run's metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.engine.metrics
    }

    /// Record a telemetry event into this node's bounded event log at
    /// the current virtual time, and bump the run-wide
    /// `("event", kind)` labeled counter so exports get per-kind event
    /// counts even after ring-buffer eviction.
    pub fn record(&mut self, ev: TelemetryEvent) {
        let now = self.engine.now;
        self.engine.metrics.count_labeled("event", ev.kind(), 1);
        self.engine.slots[self.id.index()].events.push(now, ev);
    }
}
