//! Erasure coding for Sorrento: a from-scratch GF(256) field and a
//! systematic Reed-Solomon (k, m) codec, with no external dependencies
//! (the build environment has no crates.io access — same hermetic
//! discipline as the `shims/` crates).
//!
//! The code is *systematic*: the first `k` shards are the data itself,
//! so a healthy read never touches the codec. The `m` parity shards are
//! linear combinations of the data shards over GF(256), chosen (via a
//! Vandermonde-derived generator matrix) so that **any** `k` of the
//! `k + m` shards suffice to reconstruct the rest. Up to `m`
//! simultaneous losses are survivable at `(k + m) / k`× storage
//! overhead, versus `(m + 1)`× for replication with the same fault
//! tolerance.

#![warn(missing_docs)]

pub mod gf;

use gf::{mul, mul_slice_acc};

/// Errors from codec construction, encoding, or reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcError {
    /// Invalid (k, m): both must be ≥ 1 and k + m ≤ 255.
    BadParams,
    /// Shards passed to encode/reconstruct have differing lengths.
    LengthMismatch,
    /// Fewer than k shards survive — the data is unrecoverable.
    TooFewShards,
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::BadParams => write!(f, "invalid (k, m) parameters"),
            EcError::LengthMismatch => write!(f, "shard lengths differ"),
            EcError::TooFewShards => write!(f, "fewer than k shards survive"),
        }
    }
}

impl std::error::Error for EcError {}

/// A systematic Reed-Solomon (k, m) codec over GF(256).
///
/// The generator matrix is the (k+m)×k product `V · V_top⁻¹` of a
/// Vandermonde matrix over distinct field points, so its top k rows are
/// the identity (systematic) and *every* k-row submatrix is invertible
/// (any k rows of V form a Vandermonde matrix over distinct points).
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// (k+m) rows × k columns; rows 0..k are the identity.
    matrix: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Build a codec for `k` data shards and `m` parity shards.
    pub fn new(k: usize, m: usize) -> Result<ReedSolomon, EcError> {
        if k == 0 || m == 0 || k + m > 255 {
            return Err(EcError::BadParams);
        }
        // Vandermonde rows at distinct points x = 0, 1, ..., k+m-1:
        // V[i][j] = x_i^j  (with 0^0 = 1).
        let n = k + m;
        let vand: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let mut row = vec![0u8; k];
                let mut p = 1u8;
                for cell in row.iter_mut() {
                    *cell = p;
                    p = mul(p, i as u8);
                }
                row
            })
            .collect();
        // M = V · V_top⁻¹ makes the top k rows the identity without
        // disturbing the any-k-rows-invertible property.
        let top_inv = invert(&vand[..k])
            .expect("top k Vandermonde rows are invertible");
        let matrix = vand
            .iter()
            .map(|row| matmul_row(row, &top_inv, k))
            .collect();
        Ok(ReedSolomon { k, m, matrix })
    }

    /// Data shard count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shard count.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Encode: compute the `m` parity shards from the `k` data shards.
    /// All data shards must be the same length.
    pub fn encode(&self, data: &[impl AsRef<[u8]>]) -> Result<Vec<Vec<u8>>, EcError> {
        if data.len() != self.k {
            return Err(EcError::BadParams);
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|d| d.as_ref().len() != len) {
            return Err(EcError::LengthMismatch);
        }
        let mut parity = vec![vec![0u8; len]; self.m];
        for (r, out) in parity.iter_mut().enumerate() {
            let row = &self.matrix[self.k + r];
            for (j, d) in data.iter().enumerate() {
                mul_slice_acc(row[j], d.as_ref(), out);
            }
        }
        Ok(parity)
    }

    /// Reconstruct every missing shard in place. `shards` must hold
    /// `k + m` slots ordered data-then-parity; `None` marks a loss. Any
    /// `k` survivors suffice; with more than `m` losses this returns
    /// [`EcError::TooFewShards`] and changes nothing.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        if shards.len() != self.k + self.m {
            return Err(EcError::BadParams);
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(EcError::TooFewShards);
        }
        let len = shards[present[0]].as_ref().unwrap().len();
        if present.iter().any(|&i| shards[i].as_ref().unwrap().len() != len) {
            return Err(EcError::LengthMismatch);
        }
        if present.len() == shards.len() {
            return Ok(()); // nothing missing
        }
        // Decode matrix: rows of M for the first k survivors, inverted.
        let rows: Vec<Vec<u8>> = present[..self.k]
            .iter()
            .map(|&i| self.matrix[i].clone())
            .collect();
        let dec = invert(&rows).expect("any k rows of the generator matrix are invertible");
        // data[j] = Σ_r dec[j][r] · survivor[r] — only for lost data rows.
        let mut data: Vec<Option<Vec<u8>>> = (0..self.k).map(|_| None).collect();
        for j in 0..self.k {
            if shards[j].is_some() {
                continue;
            }
            let mut out = vec![0u8; len];
            for (r, &src) in present[..self.k].iter().enumerate() {
                mul_slice_acc(dec[j][r], shards[src].as_ref().unwrap(), &mut out);
            }
            data[j] = Some(out);
        }
        for j in 0..self.k {
            if let Some(d) = data[j].take() {
                shards[j] = Some(d);
            }
        }
        // Lost parity rows re-encode from the (now complete) data rows.
        for r in 0..self.m {
            if shards[self.k + r].is_some() {
                continue;
            }
            let row = &self.matrix[self.k + r];
            let mut out = vec![0u8; len];
            for j in 0..self.k {
                mul_slice_acc(row[j], shards[j].as_ref().unwrap(), &mut out);
            }
            shards[self.k + r] = Some(out);
        }
        Ok(())
    }

    /// Check that the parity shards match the data shards (all k+m
    /// present, data-then-parity order).
    pub fn verify(&self, shards: &[impl AsRef<[u8]>]) -> Result<bool, EcError> {
        if shards.len() != self.k + self.m {
            return Err(EcError::BadParams);
        }
        let parity = self.encode(&shards[..self.k])?;
        for (r, p) in parity.iter().enumerate() {
            if shards[self.k + r].as_ref() != &p[..] {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// `row · m` where `m` is k×k: out[j] = Σ_i row[i] · m[i][j].
fn matmul_row(row: &[u8], m: &[Vec<u8>], k: usize) -> Vec<u8> {
    let mut out = vec![0u8; k];
    for (i, &c) in row.iter().enumerate() {
        if c == 0 {
            continue;
        }
        for (j, cell) in out.iter_mut().enumerate() {
            *cell ^= mul(c, m[i][j]);
        }
    }
    out
}

/// Invert a square matrix over GF(256) by Gauss–Jordan elimination.
/// Returns `None` if singular.
fn invert(m: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let n = m.len();
    let mut a: Vec<Vec<u8>> = m.to_vec();
    let mut out: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let mut row = vec![0u8; n];
            row[i] = 1;
            row
        })
        .collect();
    for col in 0..n {
        // Find a pivot.
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        out.swap(col, pivot);
        // Normalize the pivot row.
        let p = gf::inv(a[col][col]);
        for j in 0..n {
            a[col][j] = mul(a[col][j], p);
            out[col][j] = mul(out[col][j], p);
        }
        // Eliminate the column from every other row.
        for r in 0..n {
            if r == col || a[r][col] == 0 {
                continue;
            }
            let f = a[r][col];
            for j in 0..n {
                let x = mul(f, a[col][j]);
                a[r][j] ^= x;
                let y = mul(f, out[col][j]);
                out[r][j] ^= y;
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_identity_various_params() {
        for &(k, m) in &[(1usize, 1usize), (2, 1), (4, 2), (6, 3), (10, 4)] {
            let rs = ReedSolomon::new(k, m).unwrap();
            let data: Vec<Vec<u8>> = (0..k)
                .map(|i| (0..64).map(|j| ((i * 131 + j * 17) % 256) as u8).collect())
                .collect();
            let parity = rs.encode(&data).unwrap();
            assert_eq!(parity.len(), m);
            let mut shards: Vec<Option<Vec<u8>>> =
                data.iter().cloned().map(Some).chain(parity.iter().cloned().map(Some)).collect();
            // Drop the worst case: the m shards including data shard 0.
            for i in 0..m {
                shards[i % (k + m)] = None;
            }
            rs.reconstruct(&mut shards).unwrap();
            for (i, d) in data.iter().enumerate() {
                assert_eq!(shards[i].as_ref().unwrap(), d, "k={k} m={m} shard {i}");
            }
            for (i, p) in parity.iter().enumerate() {
                assert_eq!(shards[k + i].as_ref().unwrap(), p);
            }
        }
    }

    #[test]
    fn too_many_losses_is_typed_error() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            data.into_iter().map(Some).chain(parity.into_iter().map(Some)).collect();
        shards[0] = None;
        shards[2] = None;
        shards[4] = None;
        assert_eq!(rs.reconstruct(&mut shards), Err(EcError::TooFewShards));
    }

    #[test]
    fn bad_params_rejected() {
        assert_eq!(ReedSolomon::new(0, 2).unwrap_err(), EcError::BadParams);
        assert_eq!(ReedSolomon::new(2, 0).unwrap_err(), EcError::BadParams);
        assert_eq!(ReedSolomon::new(200, 56).unwrap_err(), EcError::BadParams);
        assert!(ReedSolomon::new(200, 55).is_ok());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        assert_eq!(
            rs.encode(&[vec![1u8; 4], vec![2u8; 5]]).unwrap_err(),
            EcError::LengthMismatch
        );
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![(i * 7) as u8; 32]).collect();
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        assert!(rs.verify(&shards).unwrap());
        shards[1][5] ^= 0x40;
        assert!(!rs.verify(&shards).unwrap());
    }

    #[test]
    fn every_k_subset_reconstructs() {
        // Exhaustively drop every possible ≤m subset for (4, 2).
        let (k, m) = (4usize, 2usize);
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|i| (0..40).map(|j| (i * 59 + j) as u8).collect()).collect();
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.clone().into_iter().chain(parity).collect();
        let n = k + m;
        for a in 0..n {
            for b in a..n {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                rs.reconstruct(&mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &full[i], "drop ({a},{b}) shard {i}");
                }
            }
        }
    }
}
