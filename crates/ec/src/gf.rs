//! GF(2⁸) arithmetic with the AES-adjacent reducing polynomial
//! x⁸ + x⁴ + x³ + x² + 1 (0x11d, the polynomial used by most storage
//! erasure codes). Multiplication goes through log/exp tables built at
//! compile time; bulk slice operations go through a per-coefficient
//! 256-entry product table so the inner loop is a plain indexed gather
//! the compiler can unroll and vectorize.

/// The reducing polynomial (x⁸ is implicit).
pub const POLY: u16 = 0x11d;

/// `(LOG, EXP)`: `EXP[i] = g^i` for generator g = 2, doubled to 510
/// entries so `EXP[log a + log b]` never needs a modulo; `LOG[x]` is the
/// discrete log of x (LOG[0] is unused).
const TABLES: ([u8; 256], [u8; 512]) = build_tables();

const fn build_tables() -> ([u8; 256], [u8; 512]) {
    let mut log = [0u8; 256];
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    (log, exp)
}

/// Discrete log of `x` (undefined for 0 — callers must special-case).
#[inline]
pub fn log(x: u8) -> u8 {
    TABLES.0[x as usize]
}

/// `g^i` for the field generator g = 2, valid for `i < 510`.
#[inline]
pub fn exp(i: usize) -> u8 {
    TABLES.1[i]
}

/// Addition (= subtraction) in GF(256) is XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        TABLES.1[TABLES.0[a as usize] as usize + TABLES.0[b as usize] as usize]
    }
}

/// Field division `a / b`. Panics on division by zero, like integer `/`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "GF(256) division by zero");
    if a == 0 {
        0
    } else {
        TABLES.1[TABLES.0[a as usize] as usize + 255 - TABLES.0[b as usize] as usize]
    }
}

/// Multiplicative inverse. Panics on 0.
#[inline]
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// `x^n` by square-and-multiply.
pub fn pow(x: u8, mut n: u32) -> u8 {
    let mut base = x;
    let mut acc = 1u8;
    while n > 0 {
        if n & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        n >>= 1;
    }
    acc
}

/// The 256-entry product table for a fixed coefficient `c`:
/// `table[x] = c · x`. Bulk kernels index this instead of the log/exp
/// pair — one gather per byte, no branches.
#[inline]
pub fn mul_table(c: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    if c == 0 {
        return t;
    }
    let lc = TABLES.0[c as usize] as usize;
    let mut x = 1usize;
    while x < 256 {
        t[x] = TABLES.1[lc + TABLES.0[x] as usize];
        x += 1;
    }
    t
}

/// `dst[i] ^= c · src[i]` — the Reed-Solomon inner loop. `c == 0` is a
/// no-op; `c == 1` degenerates to pure XOR (no table gather).
pub fn mul_slice_acc(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    match c {
        0 => {}
        1 => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= *s;
            }
        }
        _ => {
            let t = mul_table(c);
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= t[*s as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // exp/log are inverse bijections over the nonzero elements.
        for x in 1..=255u8 {
            assert_eq!(exp(log(x) as usize), x);
        }
        for i in 0..255usize {
            assert_eq!(log(exp(i)) as usize, i);
        }
    }

    /// Bit-by-bit carryless multiply + reduction, as an oracle.
    fn slow_mul(mut a: u8, mut b: u8) -> u8 {
        let mut r = 0u8;
        while b != 0 {
            if b & 1 == 1 {
                r ^= a;
            }
            let hi = a & 0x80 != 0;
            a <<= 1;
            if hi {
                a ^= (POLY & 0xff) as u8;
            }
            b >>= 1;
        }
        r
    }

    #[test]
    fn mul_matches_slow_oracle_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn div_inverts_mul() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(div(mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn inverses() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1);
        }
    }

    #[test]
    fn mul_slice_acc_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 29, 142, 255] {
            let mut dst = vec![0xAAu8; 256];
            mul_slice_acc(c, &src, &mut dst);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(dst[i], 0xAA ^ mul(c, s));
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for x in 0..=255u8 {
            let mut acc = 1u8;
            for n in 0..10u32 {
                assert_eq!(pow(x, n), acc);
                acc = mul(acc, x);
            }
        }
    }
}
