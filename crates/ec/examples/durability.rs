//! Closed-form durability calculator: expected annual data-loss
//! probability for one redundancy group under replication-N vs EC(k, m).
//!
//! Model (the standard nested-failure-window approximation): providers
//! fail independently at an annual rate `AFR`; a failed shard or
//! replica is rebuilt in `MTTR`. A group of `n` sites tolerating `f`
//! losses loses data when `f + 1` failures overlap within repair
//! windows:
//!
//! ```text
//! P(loss/yr) ≈ n·λ · Π_{i=1..f} (n − i)·λ·T      λ = AFR, T = MTTR (yr)
//! ```
//!
//! The first failure can strike at any point of the year (rate `n·λ`);
//! each subsequent failure must land on one of the remaining sites
//! inside the open repair window (probability `(n−i)·λ·T`). This
//! overstates loss slightly (windows shrink as repairs finish) and
//! ignores correlated failures entirely — good enough to rank modes,
//! not to promise nines.
//!
//! ```sh
//! cargo run -p sorrento-ec --example durability [AFR] [MTTR_HOURS]
//! ```

const HOURS_PER_YEAR: f64 = 365.25 * 24.0;

/// Annual data-loss probability for a group of `n` sites tolerating
/// `f` concurrent losses.
fn annual_loss(n: u32, f: u32, afr: f64, mttr_hours: f64) -> f64 {
    let t = mttr_hours / HOURS_PER_YEAR;
    let mut p = n as f64 * afr;
    for i in 1..=f {
        p *= (n - i) as f64 * afr * t;
    }
    p.min(1.0)
}

fn nines(p: f64) -> f64 {
    -(p.max(f64::MIN_POSITIVE)).log10()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let afr: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.04);
    let mttr: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4.0);

    // (label, sites, tolerated losses, storage overhead ×)
    let modes: &[(&str, u32, u32, f64)] = &[
        ("replication-2", 2, 1, 2.0),
        ("replication-3", 3, 2, 3.0),
        ("EC(4,2)", 6, 2, 6.0 / 4.0),
        ("EC(8,3)", 11, 3, 11.0 / 8.0),
        ("EC(10,4)", 14, 4, 14.0 / 10.0),
    ];

    println!("provider AFR = {:.1}%  repair MTTR = {mttr} h", afr * 100.0);
    println!();
    println!(
        "| {:<14} | {:>8} | {:>14} | {:>6} |",
        "mode", "overhead", "P(loss)/year", "nines"
    );
    println!("|{:-<16}|{:->10}|{:->16}|{:->8}|", "", "", "", "");
    for &(label, n, f, overhead) in modes {
        let p = annual_loss(n, f, afr, mttr);
        println!(
            "| {:<14} | {:>7.2}x | {:>14.3e} | {:>6.1} |",
            label,
            overhead,
            p,
            nines(p)
        );
    }
    println!();
    println!(
        "EC(4,2) matches replication-3's loss tolerance (any 2 failures) \
         at {:.2}x storage instead of 3.00x.",
        6.0 / 4.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_tolerance_is_more_durable() {
        let (afr, mttr) = (0.04, 4.0);
        assert!(annual_loss(3, 2, afr, mttr) < annual_loss(2, 1, afr, mttr));
        assert!(annual_loss(6, 2, afr, mttr) < annual_loss(2, 1, afr, mttr));
        assert!(annual_loss(14, 4, afr, mttr) < annual_loss(6, 2, afr, mttr));
    }

    #[test]
    fn probability_is_bounded() {
        assert!(annual_loss(14, 4, 1.0, HOURS_PER_YEAR) <= 1.0);
    }
}
