//! Property tests for the GF(256) field axioms and the Reed-Solomon
//! codec: encode → drop any ≤ m shards → reconstruct is the identity,
//! more than m losses is a typed error, and corruption (as opposed to
//! erasure) never silently verifies.

use proptest::prelude::*;
use sorrento_ec::{gf, EcError, ReedSolomon};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn gf_mul_commutes_and_associates(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255) {
        prop_assert_eq!(gf::mul(a, b), gf::mul(b, a));
        prop_assert_eq!(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
    }

    #[test]
    fn gf_mul_distributes_over_add(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255) {
        prop_assert_eq!(
            gf::mul(a, gf::add(b, c)),
            gf::add(gf::mul(a, b), gf::mul(a, c))
        );
    }

    #[test]
    fn gf_div_inverts_mul(a in 0u8..=255, b in 1u8..=255) {
        prop_assert_eq!(gf::div(gf::mul(a, b), b), a);
        prop_assert_eq!(gf::mul(gf::div(a, b), b), a);
        prop_assert_eq!(gf::mul(b, gf::inv(b)), 1);
    }

    #[test]
    fn gf_identities(a in 0u8..=255) {
        prop_assert_eq!(gf::mul(a, 1), a);
        prop_assert_eq!(gf::mul(a, 0), 0);
        prop_assert_eq!(gf::add(a, a), 0); // characteristic 2
    }

    /// encode → drop any ≤ m shards → reconstruct ≡ identity;
    /// > m losses → typed TooFewShards, shards untouched.
    #[test]
    fn rs_roundtrip_under_erasure(
        k in 1usize..8,
        m in 1usize..4,
        bytes in prop::collection::vec(any::<u8>(), 1..600),
        drop_seed in prop::collection::vec(0usize..64, 0..6),
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let shard_len = bytes.len().div_ceil(k);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                let mut s: Vec<u8> =
                    bytes.iter().skip(i * shard_len).take(shard_len).copied().collect();
                s.resize(shard_len, 0);
                s
            })
            .collect();
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        let mut drops: Vec<usize> = drop_seed.iter().map(|d| d % (k + m)).collect();
        drops.sort_unstable();
        drops.dedup();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for &d in &drops {
            shards[d] = None;
        }
        if drops.len() <= m {
            prop_assert_eq!(rs.reconstruct(&mut shards), Ok(()));
            for (i, s) in shards.iter().enumerate() {
                prop_assert_eq!(s.as_ref().unwrap(), &full[i]);
            }
        } else {
            prop_assert_eq!(rs.reconstruct(&mut shards), Err(EcError::TooFewShards));
            // Untouched: the survivors are still exactly what went in.
            for (i, s) in shards.iter().enumerate() {
                if !drops.contains(&i) {
                    prop_assert_eq!(s.as_ref().unwrap(), &full[i]);
                }
            }
        }
    }

    /// Decode-against-corruption fuzz: flipping any byte of any shard is
    /// always caught by verify() — erasure codes correct *known* losses,
    /// so silent corruption must at least be detectable.
    #[test]
    fn rs_corruption_never_verifies(
        k in 1usize..6,
        m in 1usize..4,
        bytes in prop::collection::vec(any::<u8>(), 8..256),
        victim in 0usize..64,
        pos in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let shard_len = bytes.len().div_ceil(k);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                let mut s: Vec<u8> =
                    bytes.iter().skip(i * shard_len).take(shard_len).copied().collect();
                s.resize(shard_len, 0);
                s
            })
            .collect();
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        prop_assert!(rs.verify(&shards).unwrap());
        let victim = victim % (k + m);
        let pos = pos % shard_len;
        shards[victim][pos] ^= flip;
        prop_assert!(!rs.verify(&shards).unwrap());
    }
}
