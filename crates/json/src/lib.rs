#![warn(missing_docs)]

//! # sorrento-json — minimal JSON tree, parser and writer
//!
//! The workspace needs JSON in three places: namespace/index-segment
//! persistence, the trace crate's JSONL files, and the telemetry
//! exporter's `results/telemetry_*.json`. None of them need serde's
//! generality — they need a small, dependency-free value tree with
//! exact integer round-trips and deterministic output.
//!
//! Design points:
//! * Objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   writers fully control output layout and byte-identical re-encoding.
//! * Integers are kept exact: `U64`/`I64` variants are emitted and
//!   parsed without a float detour; `F64` is used only for true
//!   fractionals and round-trips via Rust's shortest representation.
//! * Parsing is strict on structure but forgiving on whitespace.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Exact unsigned integer.
    U64(u64),
    /// Exact negative integer.
    I64(i64),
    /// Fractional (or out-of-range) number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Builder-style insert (objects only; panics otherwise).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Insert/replace a key (objects only; panics otherwise).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        let Json::Obj(pairs) = self else {
            panic!("Json::set on non-object");
        };
        let value = value.into();
        if let Some(p) = pairs.iter_mut().find(|(k, _)| k == key) {
            p.1 = value;
        } else {
            pairs.push((key.to_owned(), value));
        }
    }

    /// Append to an array (panics on non-arrays).
    pub fn push(&mut self, value: impl Into<Json>) {
        let Json::Arr(items) = self else {
            panic!("Json::push on non-array");
        };
        items.push(value.into());
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(x) => Some(x),
            Json::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as `i64` if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(x) => Some(x),
            Json::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(x) => Some(x as f64),
            Json::I64(x) => Some(x as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Two-space-indented multi-line encoding.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out.push('\n');
        out
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, ParseError> {
        let b = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(ParseError { at: pos, what: "trailing data" });
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::U64(x)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::U64(x as u64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::U64(x as u64)
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Json {
        if x >= 0 {
            Json::U64(x as u64)
        } else {
            Json::I64(x)
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A parse failure: byte offset and a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

// ------------------------------------------------------------------
// Writer
// ------------------------------------------------------------------

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::U64(x) => out.push_str(&x.to_string()),
        Json::I64(x) => out.push_str(&x.to_string()),
        Json::F64(x) => write_f64(*x, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Json, depth: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                indent(depth + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
        return;
    }
    // `{:?}` is Rust's shortest round-trip form; ensure it still looks
    // like a JSON number (it may produce e.g. "1e20", which is fine).
    let s = format!("{x:?}");
    out.push_str(&s);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------
// Parser
// ------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(ParseError { at: *pos, what: "unexpected end of input" });
    };
    match c {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => Ok(Json::Str(parse_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => Err(ParseError { at: *pos, what: "unexpected character" }),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &'static str, v: Json) -> Result<Json, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(ParseError { at: *pos, what: "invalid literal" })
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(ParseError { at: *pos, what: "expected object key" });
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(ParseError { at: *pos, what: "expected ':'" });
        }
        *pos += 1;
        let v = parse_value(b, pos)?;
        pairs.push((key, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(ParseError { at: *pos, what: "expected ',' or '}'" }),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        let v = parse_value(b, pos)?;
        items.push(v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(ParseError { at: *pos, what: "expected ',' or ']'" }),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    *pos += 1; // '"'
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(ParseError { at: *pos, what: "unterminated string" });
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err(ParseError { at: *pos, what: "unterminated escape" });
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let cp = parse_hex4(b, pos)?;
                        // Surrogate pairs: JSON escapes astral chars as two \u.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(cp)
                        };
                        match ch {
                            Some(ch) => out.push(ch),
                            None => {
                                return Err(ParseError { at: *pos, what: "invalid \\u escape" })
                            }
                        }
                    }
                    _ => return Err(ParseError { at: *pos, what: "invalid escape" }),
                }
            }
            c if c < 0x20 => {
                return Err(ParseError { at: *pos - 1, what: "control character in string" })
            }
            c => {
                // Reassemble UTF-8 multibyte sequences.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(ParseError { at: *pos - 1, what: "invalid UTF-8" }),
                    };
                    let start = *pos - 1;
                    let end = start + len;
                    if end > b.len() {
                        return Err(ParseError { at: start, what: "truncated UTF-8" });
                    }
                    match std::str::from_utf8(&b[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(ParseError { at: start, what: "invalid UTF-8" }),
                    }
                    *pos = end;
                }
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, ParseError> {
    if *pos + 4 > b.len() {
        return Err(ParseError { at: *pos, what: "truncated \\u escape" });
    }
    let s = std::str::from_utf8(&b[*pos..*pos + 4])
        .map_err(|_| ParseError { at: *pos, what: "invalid \\u escape" })?;
    let v = u32::from_str_radix(s, 16)
        .map_err(|_| ParseError { at: *pos, what: "invalid \\u escape" })?;
    *pos += 4;
    Ok(v)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    let mut fractional = false;
    if b.get(*pos) == Some(&b'.') {
        fractional = true;
        *pos += 1;
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        fractional = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let s = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| ParseError { at: start, what: "invalid number" })?;
    if s.is_empty() || s == "-" {
        return Err(ParseError { at: start, what: "invalid number" });
    }
    if !fractional {
        if let Ok(u) = s.parse::<u64>() {
            return Ok(Json::U64(u));
        }
        if let Ok(i) = s.parse::<i64>() {
            return Ok(Json::I64(i));
        }
    }
    s.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| ParseError { at: start, what: "invalid number" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_encode() {
        let j = Json::obj()
            .with("name", "fig09")
            .with("n", 3u64)
            .with("neg", -4i64)
            .with("pi", 3.25)
            .with("ok", true)
            .with("none", Json::Null)
            .with("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        assert_eq!(
            j.encode(),
            r#"{"name":"fig09","n":3,"neg":-4,"pi":3.25,"ok":true,"none":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn integers_round_trip_exactly() {
        let big = u64::MAX - 1;
        let j = Json::obj().with("v", big);
        let back = Json::parse(&j.encode()).unwrap();
        assert_eq!(back.get("v").unwrap().as_u64(), Some(big));
        let neg = Json::parse("{\"v\":-9007199254740993}").unwrap();
        assert_eq!(neg.get("v").unwrap().as_i64(), Some(-9007199254740993));
    }

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a":[1,2.5,"x",null,true],"b":{"c":"d\ne"}}"#;
        let j = Json::parse(src).unwrap();
        assert_eq!(j.encode(), src);
    }

    #[test]
    fn string_escapes() {
        let j = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let enc = j.encode();
        assert_eq!(enc, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&enc).unwrap(), j);
        // Unicode escape forms parse too (incl. surrogate pairs).
        assert_eq!(
            Json::parse(r#""é 😀""#).unwrap(),
            Json::Str("é 😀".into())
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["{not json}", "[1,", "\"abc", "{\"a\":}", "01x", "", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        assert!(Json::parse("[1] trailing").is_err());
    }

    #[test]
    fn set_replaces_and_get_finds() {
        let mut j = Json::obj().with("k", 1u64);
        j.set("k", 2u64);
        assert_eq!(j.get("k").unwrap().as_u64(), Some(2));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn pretty_encoding_parses_back() {
        let j = Json::obj()
            .with("a", Json::Arr(vec![Json::U64(1)]))
            .with("b", Json::obj().with("c", 2u64))
            .with("empty", Json::obj())
            .with("earr", Json::arr());
        let pretty = j.encode_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), j);
        assert!(pretty.contains("\n  \"a\": [\n"));
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.1, 1e20, -2.75, 123456.789] {
            let j = Json::F64(x);
            let back = Json::parse(&j.encode()).unwrap();
            assert_eq!(back.as_f64(), Some(x));
        }
        assert_eq!(Json::F64(f64::NAN).encode(), "null");
    }
}
