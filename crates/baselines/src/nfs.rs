//! NFS-like baseline: one kernel-integrated file server.
//!
//! The paper's NFS rows behave like this: tiny per-operation latency
//! (create 0.67 ms, 12 KB write 2.42 ms) because a single optimized
//! kernel server does one RPC per op with asynchronous metadata — but
//! aggregate throughput caps early (≈ 700 small-file sessions/s,
//! ≈ 8 MB/s bulk) because every byte funnels through that one server's
//! CPU, NIC and disk path.

use std::collections::HashMap;

use sorrento::client::{ClientOp, ClientStats, OpResult, Workload};
use sorrento::store::{SparseBuffer, WritePayload};
use sorrento::types::Error;
use sorrento_sim::{
    Ctx, DiskAccess, DiskConfig, Dur, Node, NodeConfig, NodeId, Payload, SimTime, Simulation,
};

/// Cost model for the NFS deployment, calibrated in EXPERIMENTS.md
/// against Figure 9's NFS row.
#[derive(Debug, Clone, Copy)]
pub struct NfsCosts {
    /// Kernel server CPU per request.
    pub op_cpu: Dur,
    /// Effective server data-path rate (kernel single-threaded NFS I/O
    /// path; the reason NFS plateaus near 8 MB/s in Figure 11).
    pub data_rate: f64,
    /// Positioning cost per data request (journaled/cached: small).
    pub positioning: Dur,
    /// Client RPC timeout.
    pub rpc_timeout: Dur,
}

impl Default for NfsCosts {
    fn default() -> Self {
        NfsCosts {
            op_cpu: Dur::micros(400),
            data_rate: 8.5e6,
            positioning: Dur::micros(100),
            rpc_timeout: Dur::secs(3),
        }
    }
}

/// One stored file.
#[derive(Debug)]
enum NfsFile {
    Dir,
    Real(SparseBuffer),
    Synthetic { len: u64 },
}

impl NfsFile {
    fn len(&self) -> u64 {
        match self {
            NfsFile::Dir => 0,
            NfsFile::Real(b) => b.stored_bytes(),
            NfsFile::Synthetic { len } => *len,
        }
    }
}

/// NFS wire messages.
// Variant fields are self-describing wire-protocol parameters
// (req/path/offset/len/...); each variant itself is documented.
#[allow(missing_docs)]
#[derive(Debug, Clone)]
pub enum NfsMsg {
    /// Client timer.
    Timeout(u64),
    /// Client: issue next op.
    NextOp,
    /// Lookup / getattr.
    Lookup { req: u64, path: String },
    /// Lookup reply: `(exists, size)`.
    LookupR { req: u64, result: Result<u64, Error> },
    /// Create a file.
    Create { req: u64, path: String },
    /// Create reply.
    CreateR { req: u64, result: Result<(), Error> },
    /// Create a directory.
    Mkdir { req: u64, path: String },
    /// Mkdir reply.
    MkdirR { req: u64, result: Result<(), Error> },
    /// Remove a file.
    Remove { req: u64, path: String },
    /// Remove reply.
    RemoveR { req: u64, result: Result<(), Error> },
    /// Read a byte range.
    Read { req: u64, path: String, offset: u64, len: u64 },
    /// Read reply.
    ReadR { req: u64, result: Result<(u64, Option<Vec<u8>>), Error> },
    /// Write a byte range.
    Write { req: u64, path: String, offset: u64, payload: WritePayload },
    /// Write reply.
    WriteR { req: u64, result: Result<u64, Error> },
}

impl Payload for NfsMsg {
    fn wire_size(&self) -> u64 {
        let body = match self {
            NfsMsg::Timeout(_) | NfsMsg::NextOp => 0,
            NfsMsg::Lookup { path, .. }
            | NfsMsg::Create { path, .. }
            | NfsMsg::Mkdir { path, .. }
            | NfsMsg::Remove { path, .. } => path.len() as u64,
            NfsMsg::Read { path, .. } => path.len() as u64 + 16,
            NfsMsg::ReadR { result, .. } => match result {
                Ok((len, _)) => 16 + len,
                Err(_) => 8,
            },
            NfsMsg::Write { path, payload, .. } => path.len() as u64 + 16 + payload.len(),
            _ => 16,
        };
        120 + body
    }
}

/// The NFS server node.
pub struct NfsServer {
    costs: NfsCosts,
    files: HashMap<String, NfsFile>,
    /// Operations served (observability).
    pub ops_served: u64,
}

impl NfsServer {
    fn new(costs: NfsCosts) -> NfsServer {
        let mut files = HashMap::new();
        files.insert("/".to_string(), NfsFile::Dir);
        NfsServer {
            costs,
            files,
            ops_served: 0,
        }
    }

    fn parent_exists(&self, path: &str) -> bool {
        match path.rfind('/') {
            Some(0) => true,
            Some(i) => matches!(self.files.get(&path[..i]), Some(NfsFile::Dir)),
            None => false,
        }
    }
}

impl Node<NfsMsg> for NfsServer {
    fn on_message(&mut self, from: NodeId, msg: NfsMsg, ctx: &mut Ctx<'_, NfsMsg>) {
        self.ops_served += 1;
        let cpu_done = ctx.cpu(self.costs.op_cpu);
        let (reply, disk_bytes) = match msg {
            NfsMsg::Lookup { req, path } => (
                NfsMsg::LookupR {
                    req,
                    result: self.files.get(&path).map(|f| f.len()).ok_or(Error::NotFound),
                },
                0,
            ),
            NfsMsg::Create { req, path } => {
                let result = if self.files.contains_key(&path) {
                    Err(Error::AlreadyExists)
                } else if !self.parent_exists(&path) {
                    Err(Error::NotFound)
                } else {
                    self.files.insert(path, NfsFile::Real(SparseBuffer::new()));
                    Ok(())
                };
                (NfsMsg::CreateR { req, result }, 0)
            }
            NfsMsg::Mkdir { req, path } => {
                let result = if self.files.contains_key(&path) {
                    Err(Error::AlreadyExists)
                } else if !self.parent_exists(&path) {
                    Err(Error::NotFound)
                } else {
                    self.files.insert(path, NfsFile::Dir);
                    Ok(())
                };
                (NfsMsg::MkdirR { req, result }, 0)
            }
            NfsMsg::Remove { req, path } => {
                let result = self.files.remove(&path).map(|_| ()).ok_or(Error::NotFound);
                (NfsMsg::RemoveR { req, result }, 0)
            }
            NfsMsg::Read { req, path, offset, len } => {
                let result = match self.files.get(&path) {
                    Some(NfsFile::Real(buf)) => {
                        let flen = buf.stored_bytes();
                        let end = (offset + len).min(flen);
                        let n = end.saturating_sub(offset);
                        let mut out = vec![0u8; n as usize];
                        buf.read_into(offset, &mut out);
                        Ok((n, Some(out)))
                    }
                    Some(NfsFile::Synthetic { len: flen }) => {
                        let end = (offset + len).min(*flen);
                        Ok((end.saturating_sub(offset), None))
                    }
                    Some(NfsFile::Dir) => Err(Error::NotADirectory),
                    None => Err(Error::NotFound),
                };
                let bytes = result.as_ref().map(|(n, _)| *n).unwrap_or(0);
                (NfsMsg::ReadR { req, result }, bytes)
            }
            NfsMsg::Write { req, path, offset, payload } => {
                let wlen = payload.len();
                let result = match self.files.get_mut(&path) {
                    Some(NfsFile::Dir) => Err(Error::NotADirectory),
                    None => Err(Error::NotFound),
                    Some(file) => {
                        match (&mut *file, payload) {
                            (NfsFile::Real(buf), WritePayload::Real(data)) => {
                                buf.write(offset, &data)
                            }
                            (f @ NfsFile::Real(_), WritePayload::Synthetic { len }) => {
                                // First synthetic write switches tracking.
                                *f = NfsFile::Synthetic { len: offset + len };
                            }
                            (NfsFile::Synthetic { len }, p) => {
                                *len = (*len).max(offset + p.len());
                            }
                            (NfsFile::Dir, _) => unreachable!("matched above"),
                        }
                        Ok(wlen)
                    }
                };
                (NfsMsg::WriteR { req, result }, wlen)
            }
            _ => return,
        };
        let done = if disk_bytes > 0 {
            // Data ops go through the server's single-threaded kernel I/O
            // path: positioning + bytes at the effective data rate,
            // serialized on the server (this is what caps NFS near
            // 8 MB/s in Figure 11). Modeled on the CPU queue; the disk
            // model still accumulates busy time for completeness.
            ctx.disk_submit(disk_bytes, DiskAccess::Sequential);
            let service =
                self.costs.positioning + Dur::for_bytes(disk_bytes, self.costs.data_rate);
            ctx.cpu(service).max(cpu_done)
        } else {
            cpu_done
        };
        ctx.send_at(done, from, reply);
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// The NFS client stub: one RPC per operation.
pub struct NfsClient {
    server: NodeId,
    costs: NfsCosts,
    workload: Box<dyn Workload>,
    /// Aggregate statistics (same shape as the Sorrento client's).
    pub stats: ClientStats,
    current: Option<(ClientOp, SimTime)>,
    pending_req: Option<u64>,
    next_req: u64,
    open_path: Option<String>,
    open_size: u64,
    pending_write_end: Option<u64>,
}

impl NfsClient {
    fn new(server: NodeId, costs: NfsCosts, workload: Box<dyn Workload>) -> NfsClient {
        NfsClient {
            server,
            costs,
            workload,
            stats: ClientStats::default(),
            current: None,
            pending_req: None,
            next_req: 1,
            open_path: None,
            open_size: 0,
            pending_write_end: None,
        }
    }

    fn rpc(&mut self, ctx: &mut Ctx<'_, NfsMsg>, msg: NfsMsg) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.pending_req = Some(req);
        // Bulk transfers get proportionally longer timeouts (1 MB/s floor).
        let transfer = match &msg {
            NfsMsg::Write { payload, .. } => payload.len(),
            NfsMsg::Read { len, .. } => (*len).min(512 << 20),
            _ => 0,
        };
        let timeout = self.costs.rpc_timeout + Dur::for_bytes(transfer, 2.0e5);
        ctx.send(self.server, msg);
        ctx.set_timer(timeout, NfsMsg::Timeout(req));
        req
    }

    fn pull_next(&mut self, ctx: &mut Ctx<'_, NfsMsg>) {
        let Some(op) = self.workload.next_op(ctx.now(), ctx.rng()) else {
            if self.stats.finished_at.is_none() {
                self.stats.finished_at = Some(ctx.now());
            }
            return;
        };
        let started = ctx.now();
        if self.stats.started_at.is_none() {
            self.stats.started_at = Some(started);
        }
        self.current = Some((op.clone(), started));
        let req = self.next_req;
        match op {
            ClientOp::Mkdir { path } => {
                self.rpc(ctx, NfsMsg::Mkdir { req, path });
            }
            ClientOp::Create { path } | ClientOp::CreateWith { path, .. } => {
                self.open_path = Some(path.clone());
                self.open_size = 0;
                self.rpc(ctx, NfsMsg::Create { req, path });
            }
            ClientOp::Open { path, .. } => {
                self.open_path = Some(path.clone());
                self.rpc(ctx, NfsMsg::Lookup { req, path });
            }
            ClientOp::Read { offset, len } => {
                let path = self.open_path.clone().unwrap_or_default();
                self.rpc(ctx, NfsMsg::Read { req, path, offset, len });
            }
            ClientOp::Write { offset, payload } => {
                let path = self.open_path.clone().unwrap_or_default();
                self.pending_write_end = Some(offset + payload.len());
                self.rpc(ctx, NfsMsg::Write { req, path, offset, payload });
            }
            ClientOp::Append { payload } | ClientOp::AtomicAppend { payload } => {
                let path = self.open_path.clone().unwrap_or_default();
                let offset = self.open_size;
                self.pending_write_end = Some(offset + payload.len());
                self.rpc(ctx, NfsMsg::Write { req, path, offset, payload });
            }
            ClientOp::Unlink { path } => {
                self.rpc(ctx, NfsMsg::Remove { req, path });
            }
            ClientOp::Stat { path } | ClientOp::List { path } => {
                self.rpc(ctx, NfsMsg::Lookup { req, path });
            }
            ClientOp::Sync | ClientOp::Close => {
                // Client-side for NFS: complete immediately.
                if matches!(op, ClientOp::Close) {
                    self.open_path = None;
                }
                self.finish(ctx, None, 0, None);
            }
            ClientOp::Rename { .. } => {
                // Not in the NFS baseline's vocabulary.
                self.finish(ctx, Some(Error::InvalidMode), 0, None);
            }
            ClientOp::Think { dur } => {
                ctx.set_timer(dur, NfsMsg::NextOp);
            }
        }
    }

    fn finish(
        &mut self,
        ctx: &mut Ctx<'_, NfsMsg>,
        error: Option<Error>,
        bytes: u64,
        data: Option<bytes::Bytes>,
    ) {
        let Some((op, started)) = self.current.take() else {
            return;
        };
        self.pending_req = None;
        let latency = ctx.now().since(started);
        let result = OpResult {
            error: error.clone(),
            span: 0,
            bytes,
            latency,
            data: data.clone(),
        };
        match &error {
            None => {
                self.stats.completed_ops += 1;
                self.stats.latencies.push((op.kind(), latency));
                match op {
                    ClientOp::Read { .. } => {
                        self.stats.bytes_read += bytes;
                        if data.is_some() {
                            self.stats.last_read = data;
                        }
                    }
                    ClientOp::Write { .. } | ClientOp::Append { .. } | ClientOp::AtomicAppend { .. } => {
                        self.stats.bytes_written += bytes;
                        if let Some(end) = self.pending_write_end.take() {
                            self.open_size = self.open_size.max(end);
                        }
                    }
                    _ => {}
                }
            }
            Some(e) => {
                self.stats.failed_ops += 1;
                self.stats.last_error = Some(e.clone());
            }
        }
        self.workload.on_result(&op, &result, ctx.now());
        // Defer via timer: RPC-free ops (close/sync) must not recurse.
        ctx.set_timer(Dur::micros(150), NfsMsg::NextOp);
    }
}

impl Node<NfsMsg> for NfsClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NfsMsg>) {
        self.pull_next(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: NfsMsg, ctx: &mut Ctx<'_, NfsMsg>) {
        match msg {
            NfsMsg::NextOp => {
                if self.current.is_some() {
                    // Think finished.
                    self.finish(ctx, None, 0, None);
                } else {
                    self.pull_next(ctx);
                }
            }
            NfsMsg::Timeout(req)
                if self.pending_req == Some(req) => {
                    self.finish(ctx, Some(Error::Timeout), 0, None);
                }
            NfsMsg::LookupR { req, result } => {
                if self.pending_req != Some(req) {
                    return;
                }
                match result {
                    Ok(size) => {
                        self.open_size = size;
                        self.finish(ctx, None, size, None);
                    }
                    Err(e) => self.finish(ctx, Some(e), 0, None),
                }
            }
            NfsMsg::CreateR { req, result }
            | NfsMsg::MkdirR { req, result }
            | NfsMsg::RemoveR { req, result } => {
                if self.pending_req != Some(req) {
                    return;
                }
                self.finish(ctx, result.err(), 0, None);
            }
            NfsMsg::ReadR { req, result } => {
                if self.pending_req != Some(req) {
                    return;
                }
                match result {
                    Ok((n, data)) => {
                        let data = data.map(bytes::Bytes::from);
                        self.finish(ctx, None, n, data)
                    }
                    Err(e) => self.finish(ctx, Some(e), 0, None),
                }
            }
            NfsMsg::WriteR { req, result } => {
                if self.pending_req != Some(req) {
                    return;
                }
                match result {
                    Ok(n) => self.finish(ctx, None, n, None),
                    Err(e) => self.finish(ctx, Some(e), 0, None),
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Cluster wrapper
// ---------------------------------------------------------------------

/// A one-server NFS deployment with attached clients.
pub struct NfsCluster {
    /// The underlying simulation.
    pub sim: Simulation<NfsMsg>,
    server: NodeId,
    clients: Vec<NodeId>,
    costs: NfsCosts,
}

impl NfsCluster {
    /// Build the deployment.
    pub fn new(seed: u64, costs: NfsCosts) -> NfsCluster {
        let mut sim = Simulation::new(seed);
        let server_cfg = NodeConfig {
            disk: DiskConfig::scsi_10krpm(72 * 1_000_000_000),
            ..NodeConfig::default()
        };
        let server = sim.add_node(NfsServer::new(costs), server_cfg);
        NfsCluster {
            sim,
            server,
            clients: Vec::new(),
            costs,
        }
    }

    /// The server's node id.
    pub fn server(&self) -> NodeId {
        self.server
    }

    /// Attach a client driven by `workload`.
    pub fn add_client<W: Workload>(&mut self, workload: W) -> NodeId {
        let client = NfsClient::new(self.server, self.costs, Box::new(workload));
        let id = self.sim.add_node(client, NodeConfig::default());
        self.clients.push(id);
        id
    }

    /// Statistics of an attached client.
    pub fn client_stats(&self, id: NodeId) -> Option<&ClientStats> {
        self.sim.node_ref::<NfsClient>(id).map(|c| &c.stats)
    }

    /// Run for `d` of virtual time.
    pub fn run_for(&mut self, d: Dur) {
        self.sim.run_for(d);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorrento::cluster::ScriptedWorkload;

    #[test]
    fn nfs_roundtrip() {
        let mut c = NfsCluster::new(1, NfsCosts::default());
        let id = c.add_client(ScriptedWorkload::new(vec![
            ClientOp::Create { path: "/f".into() },
            ClientOp::write_bytes(0, b"nfs data".to_vec()),
            ClientOp::Close,
            ClientOp::Open { path: "/f".into(), write: false },
            ClientOp::Read { offset: 0, len: 8 },
            ClientOp::Close,
        ]));
        c.run_for(Dur::secs(10));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0, "{:?}", s.last_error);
        assert_eq!(s.last_read.as_deref(), Some(&b"nfs data"[..]));
    }

    #[test]
    fn nfs_small_op_latency_matches_figure9_band() {
        // Figure 9: NFS create 0.67 ms, 12 KB write 2.42 ms, read 2.93 ms.
        let mut c = NfsCluster::new(2, NfsCosts::default());
        let id = c.add_client(ScriptedWorkload::new(vec![
            ClientOp::Create { path: "/lat".into() },
            ClientOp::Close,
            ClientOp::Open { path: "/lat".into(), write: true },
            ClientOp::write_bytes(0, vec![1; 12 * 1024]),
            ClientOp::Close,
            ClientOp::Open { path: "/lat".into(), write: false },
            ClientOp::Read { offset: 0, len: 12 * 1024 },
            ClientOp::Close,
        ]));
        c.run_for(Dur::secs(10));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0);
        let lat = |kind: &str| {
            s.latencies
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, d)| d.as_millis_f64())
                .unwrap()
        };
        let create = lat("create");
        let write = lat("write");
        let read = lat("read");
        assert!(create < 2.0, "create {create} ms");
        assert!(write > 1.0 && write < 6.0, "write {write} ms");
        assert!(read > 1.0 && read < 6.0, "read {read} ms");
    }

    #[test]
    fn nfs_errors() {
        let mut c = NfsCluster::new(3, NfsCosts::default());
        let id = c.add_client(ScriptedWorkload::new(vec![
            ClientOp::Open { path: "/missing".into(), write: false },
            ClientOp::Create { path: "/nodir/f".into() },
            ClientOp::Unlink { path: "/missing".into() },
        ]));
        c.run_for(Dur::secs(10));
        assert_eq!(c.client_stats(id).unwrap().failed_ops, 3);
    }

    #[test]
    fn nfs_synthetic_files() {
        let mut c = NfsCluster::new(4, NfsCosts::default());
        let id = c.add_client(ScriptedWorkload::new(vec![
            ClientOp::Create { path: "/s".into() },
            ClientOp::write_synth(0, 4_000_000),
            ClientOp::Read { offset: 0, len: 4_000_000 },
            ClientOp::Close,
        ]));
        c.run_for(Dur::secs(30));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0);
        assert_eq!(s.bytes_read, 4_000_000);
    }
}
