#![warn(missing_docs)]

//! # sorrento-baselines — the paper's comparison systems
//!
//! Every table and figure in Sorrento's evaluation (§4) compares against
//! NFS and PVFS. Those systems are reproduced here on the same simulator
//! substrate and driven by the same [`Workload`](sorrento::client::Workload)
//! abstraction, so a single harness can swap backends:
//!
//! * [`nfs`] — a single-server file service modeled after a
//!   kernel-integrated NFS v3 deployment: one RPC per operation, very low
//!   per-op overhead, asynchronous metadata, a single server disk and NIC
//!   that bound aggregate throughput.
//! * [`pvfs`] — a PVFS-style parallel file system: one metadata manager
//!   (storing each inode as a small file on its disk — the §4.1 bottleneck)
//!   plus N I/O daemons over which file data is striped in 64 KB units,
//!   with no replication and in-place writes.
//!
//! Both clusters expose `add_client(workload)` / `client_stats(id)` with
//! the same semantics as [`sorrento::cluster::Cluster`], so the benchmark
//! harness treats all three systems uniformly.

pub mod nfs;
pub mod pvfs;
