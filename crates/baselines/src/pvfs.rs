//! PVFS-like baseline: one metadata manager + N I/O daemons (iods), file
//! data striped in 64 KB units across all iods, no replication, writes in
//! place.
//!
//! The behaviours the paper measures come from two modeling choices:
//!
//! * The manager represents "each inode using a small file" (§4.1.1), so
//!   every metadata operation costs one or more *random* disk accesses on
//!   the manager's single disk — that serialized disk is why PVFS
//!   saturates at ~64 small-file sessions/s in Figure 10 while its
//!   striped data path scales beautifully in Figure 11.
//! * Data transfers go client ↔ iod directly and in parallel, with no
//!   versioning or replication overhead — which is why PVFS outruns
//!   `Sorrento-(8,2)` by ~2× on bulk writes (Figure 11: Sorrento pays for
//!   the second replica).

use std::collections::HashMap;

use sorrento::client::{ClientOp, ClientStats, OpResult, Workload};
use sorrento::store::{SparseBuffer, WritePayload};
use sorrento::types::Error;
use sorrento_sim::{
    Ctx, DiskAccess, Dur, Node, NodeConfig, NodeId, Payload, SimTime, Simulation,
};

/// Stripe unit, matching PVFS's default of 64 KB.
pub const STRIPE_UNIT: u64 = 64 * 1024;

/// Cost model for the PVFS deployment (calibrated in EXPERIMENTS.md
/// against Figure 9's PVFS rows).
#[derive(Debug, Clone, Copy)]
pub struct PvfsCosts {
    /// Manager CPU per metadata request.
    pub mgr_cpu: Dur,
    /// Random disk accesses the manager performs per *create* (inode
    /// file creation + directory update + attribute write).
    pub mgr_create_disk_ops: u32,
    /// Random disk accesses per lookup/open.
    pub mgr_lookup_disk_ops: u32,
    /// Random disk accesses per close (size/attribute update).
    pub mgr_close_disk_ops: u32,
    /// Random disk accesses per remove.
    pub mgr_remove_disk_ops: u32,
    /// Positioning cost of one manager metadata disk access.
    pub mgr_disk_positioning: Dur,
    /// Iod CPU per request.
    pub iod_cpu: Dur,
    /// Client RPC timeout.
    pub rpc_timeout: Dur,
}

impl Default for PvfsCosts {
    fn default() -> Self {
        PvfsCosts {
            mgr_cpu: Dur::micros(800),
            mgr_create_disk_ops: 3,
            mgr_lookup_disk_ops: 2,
            mgr_close_disk_ops: 1,
            mgr_remove_disk_ops: 1,
            mgr_disk_positioning: Dur::millis(14),
            iod_cpu: Dur::micros(900),
            rpc_timeout: Dur::secs(3),
        }
    }
}

/// File metadata held by the manager.
#[derive(Debug, Clone, Copy)]
pub struct PvfsMeta {
    /// Internal file id.
    pub fid: u64,
    /// Current size.
    pub size: u64,
    /// Whether the entry is a directory.
    pub is_dir: bool,
}

/// PVFS wire messages.
// Variant fields are self-describing wire-protocol parameters
// (req/path/offset/len/...); each variant itself is documented.
#[allow(missing_docs)]
#[derive(Debug, Clone)]
pub enum PvfsMsg {
    /// Client timer.
    Timeout(u64),
    /// Client: issue next op.
    NextOp,
    /// Manager: create a file.
    MgrCreate { req: u64, path: String },
    /// Reply with the new file's metadata.
    MgrCreateR { req: u64, result: Result<PvfsMeta, Error> },
    /// Manager: mkdir.
    MgrMkdir { req: u64, path: String },
    /// Mkdir reply.
    MgrMkdirR { req: u64, result: Result<(), Error> },
    /// Manager: lookup/open.
    MgrLookup { req: u64, path: String },
    /// Lookup reply.
    MgrLookupR { req: u64, result: Result<PvfsMeta, Error> },
    /// Manager: record the new size at close.
    MgrClose { req: u64, path: String, size: u64 },
    /// Close reply.
    MgrCloseR { req: u64, result: Result<(), Error> },
    /// Manager: remove a file; returns its fid so the client can purge
    /// iods.
    MgrRemove { req: u64, path: String },
    /// Remove reply.
    MgrRemoveR { req: u64, result: Result<PvfsMeta, Error> },
    /// Iod: write a range of one stripe file.
    IodWrite { req: u64, fid: u64, offset: u64, payload: WritePayload },
    /// Iod write ack.
    IodWriteR { req: u64, result: Result<u64, Error> },
    /// Iod: read a range of one stripe file.
    IodRead { req: u64, fid: u64, offset: u64, len: u64 },
    /// Iod read reply.
    IodReadR { req: u64, result: Result<(u64, Option<Vec<u8>>), Error> },
    /// Iod: drop all stripes of a file.
    IodPurge { req: u64, fid: u64 },
    /// Purge ack.
    IodPurgeR { req: u64 },
}

impl Payload for PvfsMsg {
    fn wire_size(&self) -> u64 {
        let body = match self {
            PvfsMsg::Timeout(_) | PvfsMsg::NextOp => 0,
            PvfsMsg::MgrCreate { path, .. }
            | PvfsMsg::MgrMkdir { path, .. }
            | PvfsMsg::MgrLookup { path, .. }
            | PvfsMsg::MgrRemove { path, .. } => path.len() as u64,
            PvfsMsg::MgrClose { path, .. } => path.len() as u64 + 8,
            PvfsMsg::IodWrite { payload, .. } => 24 + payload.len(),
            PvfsMsg::IodReadR { result, .. } => match result {
                Ok((len, _)) => 16 + len,
                Err(_) => 8,
            },
            _ => 32,
        };
        120 + body
    }
}

// ---------------------------------------------------------------------
// Manager
// ---------------------------------------------------------------------

/// The PVFS metadata manager.
pub struct PvfsMgr {
    costs: PvfsCosts,
    entries: HashMap<String, PvfsMeta>,
    next_fid: u64,
    /// Recently touched inode files (the manager's host fs caches them,
    /// so repeat lookups of hot paths skip the metadata disk).
    hot_inodes: std::collections::VecDeque<String>,
    /// Operations served (observability).
    pub ops_served: u64,
}

/// How many hot inode files the manager's page cache holds. Small, as
/// on the real manager: a working set that cycles through more paths
/// than this (e.g. the Figure 9 microbenchmarks) always misses, while a
/// service that hammers a fixed small set (PSM's 24 partitions) hits.
const INODE_CACHE_CAP: usize = 32;

impl PvfsMgr {
    fn new(costs: PvfsCosts) -> PvfsMgr {
        let mut entries = HashMap::new();
        entries.insert(
            "/".to_string(),
            PvfsMeta {
                fid: 0,
                size: 0,
                is_dir: true,
            },
        );
        PvfsMgr {
            costs,
            entries,
            next_fid: 1,
            hot_inodes: std::collections::VecDeque::new(),
            ops_served: 0,
        }
    }

    /// Mark a path's inode file hot; returns whether it already was.
    fn touch_inode(&mut self, path: &str) -> bool {
        if let Some(pos) = self.hot_inodes.iter().position(|p| p == path) {
            self.hot_inodes.remove(pos);
            self.hot_inodes.push_back(path.to_string());
            return true;
        }
        self.hot_inodes.push_back(path.to_string());
        while self.hot_inodes.len() > INODE_CACHE_CAP {
            self.hot_inodes.pop_front();
        }
        false
    }

    fn parent_exists(&self, path: &str) -> bool {
        match path.rfind('/') {
            Some(0) => true,
            Some(i) => self.entries.get(&path[..i]).is_some_and(|m| m.is_dir),
            None => false,
        }
    }

    /// Charge `ops` random metadata-disk accesses; returns completion.
    fn meta_disk(&self, ctx: &mut Ctx<'_, PvfsMsg>, ops: u32) -> sorrento_sim::SimTime {
        let mut done = ctx.now();
        for _ in 0..ops {
            done = ctx.disk_submit(512, DiskAccess::Random);
        }
        done
    }
}

impl Node<PvfsMsg> for PvfsMgr {
    fn on_message(&mut self, from: NodeId, msg: PvfsMsg, ctx: &mut Ctx<'_, PvfsMsg>) {
        self.ops_served += 1;
        let cpu_done = ctx.cpu(self.costs.mgr_cpu);
        let (reply, disk_ops) = match msg {
            PvfsMsg::MgrCreate { req, path } => {
                let result = if self.entries.contains_key(&path) {
                    Err(Error::AlreadyExists)
                } else if !self.parent_exists(&path) {
                    Err(Error::NotFound)
                } else {
                    let meta = PvfsMeta {
                        fid: self.next_fid,
                        size: 0,
                        is_dir: false,
                    };
                    self.next_fid += 1;
                    self.entries.insert(path, meta);
                    Ok(meta)
                };
                (
                    PvfsMsg::MgrCreateR { req, result },
                    self.costs.mgr_create_disk_ops,
                )
            }
            PvfsMsg::MgrMkdir { req, path } => {
                let result = if self.entries.contains_key(&path) {
                    Err(Error::AlreadyExists)
                } else if !self.parent_exists(&path) {
                    Err(Error::NotFound)
                } else {
                    let meta = PvfsMeta {
                        fid: self.next_fid,
                        size: 0,
                        is_dir: true,
                    };
                    self.next_fid += 1;
                    self.entries.insert(path, meta);
                    Ok(())
                };
                (
                    PvfsMsg::MgrMkdirR { req, result },
                    self.costs.mgr_create_disk_ops,
                )
            }
            PvfsMsg::MgrLookup { req, path } => {
                // Repeat lookups of a hot inode file hit the page cache.
                let cached = self.touch_inode(&path);
                let ops = if cached { 0 } else { self.costs.mgr_lookup_disk_ops };
                (
                    PvfsMsg::MgrLookupR {
                        req,
                        result: self.entries.get(&path).copied().ok_or(Error::NotFound),
                    },
                    ops,
                )
            }
            PvfsMsg::MgrClose { req, path, size } => {
                let result = match self.entries.get_mut(&path) {
                    Some(meta) => {
                        meta.size = meta.size.max(size);
                        Ok(())
                    }
                    None => Err(Error::NotFound),
                };
                (
                    PvfsMsg::MgrCloseR { req, result },
                    self.costs.mgr_close_disk_ops,
                )
            }
            PvfsMsg::MgrRemove { req, path } => {
                let result = self.entries.remove(&path).ok_or(Error::NotFound);
                (
                    PvfsMsg::MgrRemoveR { req, result },
                    self.costs.mgr_remove_disk_ops,
                )
            }
            _ => return,
        };
        let disk_done = self.meta_disk(ctx, disk_ops);
        ctx.send_at(cpu_done.max(disk_done), from, reply);
    }
}

// ---------------------------------------------------------------------
// Iod
// ---------------------------------------------------------------------

/// Stripe-file storage on one iod.
#[derive(Debug)]
enum StripeData {
    Real(SparseBuffer),
    Synthetic { len: u64 },
}

/// One PVFS I/O daemon.
pub struct PvfsIod {
    costs: PvfsCosts,
    stripes: HashMap<u64, StripeData>,
    /// Bytes served (observability).
    pub bytes_in: u64,
    /// Bytes served (observability).
    pub bytes_out: u64,
}

impl PvfsIod {
    fn new(costs: PvfsCosts) -> PvfsIod {
        PvfsIod {
            costs,
            stripes: HashMap::new(),
            bytes_in: 0,
            bytes_out: 0,
        }
    }
}

impl Node<PvfsMsg> for PvfsIod {
    fn on_message(&mut self, from: NodeId, msg: PvfsMsg, ctx: &mut Ctx<'_, PvfsMsg>) {
        let cpu_done = ctx.cpu(self.costs.iod_cpu);
        match msg {
            PvfsMsg::IodWrite {
                req,
                fid,
                offset,
                payload,
            } => {
                let wlen = payload.len();
                self.bytes_in += wlen;
                let entry = self
                    .stripes
                    .entry(fid)
                    .or_insert_with(|| match &payload {
                        WritePayload::Real(_) => StripeData::Real(SparseBuffer::new()),
                        WritePayload::Synthetic { .. } => StripeData::Synthetic { len: 0 },
                    });
                match (entry, payload) {
                    (StripeData::Real(buf), WritePayload::Real(data)) => {
                        buf.write(offset, &data)
                    }
                    (e @ StripeData::Real(_), WritePayload::Synthetic { len }) => {
                        *e = StripeData::Synthetic { len: offset + len };
                    }
                    (StripeData::Synthetic { len }, p) => {
                        *len = (*len).max(offset + p.len());
                    }
                }
                let _ = ctx.disk().alloc(wlen);
                let disk_done = ctx.disk_submit(wlen, DiskAccess::Sequential);
                ctx.send_at(
                    cpu_done.max(disk_done),
                    from,
                    PvfsMsg::IodWriteR {
                        req,
                        result: Ok(wlen),
                    },
                );
            }
            PvfsMsg::IodRead {
                req,
                fid,
                offset,
                len,
            } => {
                let result = match self.stripes.get(&fid) {
                    Some(StripeData::Real(buf)) => {
                        let mut out = vec![0u8; len as usize];
                        buf.read_into(offset, &mut out);
                        Ok((len, Some(out)))
                    }
                    Some(StripeData::Synthetic { .. }) => Ok((len, None)),
                    None => Err(Error::NoSuchSegment),
                };
                let bytes = result.as_ref().map(|(n, _)| *n).unwrap_or(0);
                self.bytes_out += bytes;
                let disk_done = ctx.disk_submit(bytes, DiskAccess::Random);
                ctx.send_at(cpu_done.max(disk_done), from, PvfsMsg::IodReadR { req, result });
            }
            PvfsMsg::IodPurge { req, fid } => {
                self.stripes.remove(&fid);
                let disk_done = ctx.disk_submit(128, DiskAccess::Random);
                ctx.send_at(cpu_done.max(disk_done), from, PvfsMsg::IodPurgeR { req });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Map a file byte range onto per-iod stripe-local extents:
/// `(iod index, stripe-local offset, len, file offset)`.
pub fn stripe_extents(offset: u64, len: u64, niods: u64) -> Vec<(usize, u64, u64, u64)> {
    let mut out = Vec::new();
    let mut pos = offset;
    let end = offset + len;
    while pos < end {
        let block = pos / STRIPE_UNIT;
        let within = pos % STRIPE_UNIT;
        let iod = (block % niods) as usize;
        let local = (block / niods) * STRIPE_UNIT + within;
        let take = (STRIPE_UNIT - within).min(end - pos);
        out.push((iod, local, take, pos));
        pos += take;
    }
    out
}

/// The PVFS client stub.
pub struct PvfsClient {
    mgr: NodeId,
    iods: Vec<NodeId>,
    costs: PvfsCosts,
    workload: Box<dyn Workload>,
    /// Aggregate statistics.
    pub stats: ClientStats,
    current: Option<(ClientOp, SimTime)>,
    /// Outstanding requests of the current op: req → file-relative base
    /// offset of the extent (reads) or 0.
    pending: HashMap<u64, u64>,
    next_req: u64,
    open: Option<(String, PvfsMeta)>,
    read_buf: Option<Vec<u8>>,
    read_base: u64,
    acc_bytes: u64,
    failed: Option<Error>,
    /// For unlink: remaining purge acks.
    purge_left: usize,
    /// Total bytes of the in-progress scatter (timeout budgeting).
    scatter_bytes: u64,
}

impl PvfsClient {
    fn new(
        mgr: NodeId,
        iods: Vec<NodeId>,
        costs: PvfsCosts,
        workload: Box<dyn Workload>,
    ) -> PvfsClient {
        PvfsClient {
            mgr,
            iods,
            costs,
            workload,
            stats: ClientStats::default(),
            current: None,
            pending: HashMap::new(),
            next_req: 1,
            open: None,
            read_buf: None,
            read_base: 0,
            acc_bytes: 0,
            failed: None,
            purge_left: 0,
            scatter_bytes: 0,
        }
    }

    fn send_rpc(&mut self, ctx: &mut Ctx<'_, PvfsMsg>, to: NodeId, msg: PvfsMsg, tag: u64) -> u64 {
        let req = match &msg {
            PvfsMsg::MgrCreate { req, .. }
            | PvfsMsg::MgrMkdir { req, .. }
            | PvfsMsg::MgrLookup { req, .. }
            | PvfsMsg::MgrClose { req, .. }
            | PvfsMsg::MgrRemove { req, .. }
            | PvfsMsg::IodWrite { req, .. }
            | PvfsMsg::IodRead { req, .. }
            | PvfsMsg::IodPurge { req, .. } => *req,
            _ => unreachable!(),
        };
        // Bulk transfers get proportionally longer timeouts; scatters
        // queue behind each other, so budget the whole op's volume
        // (1 MB/s floor) on every piece.
        let transfer = match &msg {
            PvfsMsg::IodWrite { .. } | PvfsMsg::IodRead { .. } => self.scatter_bytes,
            _ => 0,
        };
        let timeout = self.costs.rpc_timeout + Dur::for_bytes(transfer, 2.0e5);
        self.pending.insert(req, tag);
        ctx.send(to, msg);
        ctx.set_timer(timeout, PvfsMsg::Timeout(req));
        req
    }

    fn fresh(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    fn pull_next(&mut self, ctx: &mut Ctx<'_, PvfsMsg>) {
        let Some(op) = self.workload.next_op(ctx.now(), ctx.rng()) else {
            if self.stats.finished_at.is_none() {
                self.stats.finished_at = Some(ctx.now());
            }
            return;
        };
        if self.stats.started_at.is_none() {
            self.stats.started_at = Some(ctx.now());
        }
        self.current = Some((op.clone(), ctx.now()));
        self.acc_bytes = 0;
        self.failed = None;
        self.read_buf = None;
        match op {
            ClientOp::Mkdir { path } => {
                let req = self.fresh();
                self.send_rpc(ctx, self.mgr, PvfsMsg::MgrMkdir { req, path }, 0);
            }
            ClientOp::Create { path } | ClientOp::CreateWith { path, .. } => {
                let req = self.fresh();
                self.send_rpc(ctx, self.mgr, PvfsMsg::MgrCreate { req, path }, 0);
            }
            ClientOp::Open { path, .. } | ClientOp::Stat { path } | ClientOp::List { path } => {
                let req = self.fresh();
                self.send_rpc(ctx, self.mgr, PvfsMsg::MgrLookup { req, path }, 0);
            }
            ClientOp::Read { offset, len } => self.start_read(ctx, offset, len),
            ClientOp::Write { offset, payload } => self.start_write(ctx, offset, payload),
            ClientOp::Append { payload } | ClientOp::AtomicAppend { payload } => {
                let offset = self.open.as_ref().map(|(_, m)| m.size).unwrap_or(0);
                self.start_write(ctx, offset, payload);
            }
            ClientOp::Sync => self.finish(ctx, None, 0, None),
            ClientOp::Close => {
                match self.open.clone() {
                    Some((path, meta)) => {
                        let req = self.fresh();
                        self.send_rpc(
                            ctx,
                            self.mgr,
                            PvfsMsg::MgrClose {
                                req,
                                path,
                                size: meta.size,
                            },
                            0,
                        );
                    }
                    None => self.finish(ctx, None, 0, None),
                }
            }
            ClientOp::Unlink { path } => {
                let req = self.fresh();
                self.send_rpc(ctx, self.mgr, PvfsMsg::MgrRemove { req, path }, 0);
            }
            ClientOp::Rename { .. } => {
                // Not in the PVFS baseline's vocabulary.
                self.finish(ctx, Some(Error::InvalidMode), 0, None);
            }
            ClientOp::Think { dur } => {
                ctx.set_timer(dur, PvfsMsg::NextOp);
            }
        }
    }

    fn start_read(&mut self, ctx: &mut Ctx<'_, PvfsMsg>, offset: u64, len: u64) {
        let Some((_, meta)) = self.open else {
            self.finish(ctx, Some(Error::NotFound), 0, None);
            return;
        };
        let end = (offset + len).min(meta.size);
        if offset >= end {
            self.finish(ctx, None, 0, Some(bytes::Bytes::new()));
            return;
        }
        let covered = end - offset;
        self.read_base = offset;
        self.scatter_bytes = covered;
        self.read_buf = Some(vec![0u8; covered as usize]);
        for (iod, local, elen, fpos) in stripe_extents(offset, covered, self.iods.len() as u64) {
            let req = self.fresh();
            let target = self.iods[iod];
            self.send_rpc(
                ctx,
                target,
                PvfsMsg::IodRead {
                    req,
                    fid: meta.fid,
                    offset: local,
                    len: elen,
                },
                fpos,
            );
        }
    }

    fn start_write(&mut self, ctx: &mut Ctx<'_, PvfsMsg>, offset: u64, payload: WritePayload) {
        let Some((_, meta)) = &mut self.open else {
            self.finish(ctx, Some(Error::NotFound), 0, None);
            return;
        };
        let len = payload.len();
        meta.size = meta.size.max(offset + len);
        self.scatter_bytes = len;
        let fid = meta.fid;
        let niods = self.iods.len() as u64;
        for (iod, local, elen, fpos) in stripe_extents(offset, len, niods) {
            let piece = match &payload {
                WritePayload::Real(data) => {
                    let s = (fpos - offset) as usize;
                    // Zero-copy stripe view into the caller's payload.
                    WritePayload::Real(data.slice(s..s + elen as usize))
                }
                WritePayload::Synthetic { .. } => WritePayload::Synthetic { len: elen },
            };
            let req = self.fresh();
            let target = self.iods[iod];
            self.send_rpc(
                ctx,
                target,
                PvfsMsg::IodWrite {
                    req,
                    fid,
                    offset: local,
                    payload: piece,
                },
                fpos,
            );
        }
    }

    fn finish(
        &mut self,
        ctx: &mut Ctx<'_, PvfsMsg>,
        error: Option<Error>,
        bytes: u64,
        data: Option<bytes::Bytes>,
    ) {
        let Some((op, started)) = self.current.take() else {
            return;
        };
        self.pending.clear();
        let latency = ctx.now().since(started);
        let result = OpResult {
            error: error.clone(),
            span: 0,
            bytes,
            latency,
            data: data.clone(),
        };
        match &error {
            None => {
                self.stats.completed_ops += 1;
                self.stats.latencies.push((op.kind(), latency));
                match op {
                    ClientOp::Read { .. } => {
                        self.stats.bytes_read += bytes;
                        if data.is_some() {
                            self.stats.last_read = data;
                        }
                    }
                    ClientOp::Write { .. } | ClientOp::Append { .. } | ClientOp::AtomicAppend { .. } => {
                        self.stats.bytes_written += bytes;
                    }
                    _ => {}
                }
            }
            Some(e) => {
                self.stats.failed_ops += 1;
                self.stats.last_error = Some(e.clone());
            }
        }
        self.workload.on_result(&op, &result, ctx.now());
        // Defer via timer: RPC-free ops (sync) must not recurse.
        ctx.set_timer(Dur::micros(150), PvfsMsg::NextOp);
    }

    fn scatter_done(&mut self, ctx: &mut Ctx<'_, PvfsMsg>) {
        if !self.pending.is_empty() {
            return;
        }
        if self.purge_left > 0 {
            return;
        }
        let error = self.failed.clone();
        let bytes = self.acc_bytes;
        let data = self.read_buf.take().map(bytes::Bytes::from);
        self.finish(ctx, error, bytes, data);
    }
}

impl Node<PvfsMsg> for PvfsClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, PvfsMsg>) {
        self.pull_next(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: PvfsMsg, ctx: &mut Ctx<'_, PvfsMsg>) {
        match msg {
            PvfsMsg::NextOp => {
                if self.current.is_some() {
                    self.finish(ctx, None, 0, None);
                } else {
                    self.pull_next(ctx);
                }
            }
            PvfsMsg::Timeout(req)
                if self.pending.remove(&req).is_some() => {
                    self.failed = Some(Error::Timeout);
                    self.scatter_done(ctx);
                }
            PvfsMsg::MgrCreateR { req, result } => {
                if self.pending.remove(&req).is_none() {
                    return;
                }
                match result {
                    Ok(meta) => {
                        let path = match self.current.as_ref().map(|(o, _)| o) {
                            Some(ClientOp::Create { path })
                            | Some(ClientOp::CreateWith { path, .. }) => path.clone(),
                            _ => String::new(),
                        };
                        self.open = Some((path, meta));
                        self.finish(ctx, None, 0, None);
                    }
                    Err(e) => self.finish(ctx, Some(e), 0, None),
                }
            }
            PvfsMsg::MgrMkdirR { req, result } | PvfsMsg::MgrCloseR { req, result } => {
                if self.pending.remove(&req).is_none() {
                    return;
                }
                if matches!(self.current.as_ref().map(|(o, _)| o), Some(ClientOp::Close)) {
                    self.open = None;
                }
                self.finish(ctx, result.err(), 0, None);
            }
            PvfsMsg::MgrLookupR { req, result } => {
                if self.pending.remove(&req).is_none() {
                    return;
                }
                match result {
                    Ok(meta) => {
                        if matches!(
                            self.current.as_ref().map(|(o, _)| o),
                            Some(ClientOp::Open { .. })
                        ) {
                            let path = match self.current.as_ref().map(|(o, _)| o) {
                                Some(ClientOp::Open { path, .. }) => path.clone(),
                                _ => String::new(),
                            };
                            self.open = Some((path, meta));
                        }
                        self.finish(ctx, None, meta.size, None);
                    }
                    Err(e) => self.finish(ctx, Some(e), 0, None),
                }
            }
            PvfsMsg::MgrRemoveR { req, result } => {
                if self.pending.remove(&req).is_none() {
                    return;
                }
                match result {
                    Ok(meta) if !meta.is_dir && meta.size > 0 => {
                        // Purge all iods in parallel.
                        self.purge_left = self.iods.len();
                        for i in 0..self.iods.len() {
                            let req2 = self.fresh();
                            let target = self.iods[i];
                            self.send_rpc(
                                ctx,
                                target,
                                PvfsMsg::IodPurge {
                                    req: req2,
                                    fid: meta.fid,
                                },
                                0,
                            );
                        }
                    }
                    Ok(_) => self.finish(ctx, None, 0, None),
                    Err(e) => self.finish(ctx, Some(e), 0, None),
                }
            }
            PvfsMsg::IodPurgeR { req } => {
                if self.pending.remove(&req).is_none() {
                    return;
                }
                self.purge_left = self.purge_left.saturating_sub(1);
                if self.purge_left == 0 {
                    self.finish(ctx, None, 0, None);
                }
            }
            PvfsMsg::IodWriteR { req, result } => {
                let Some(_) = self.pending.remove(&req) else {
                    return;
                };
                match result {
                    Ok(n) => self.acc_bytes += n,
                    Err(e) => self.failed = Some(e),
                }
                self.scatter_done(ctx);
            }
            PvfsMsg::IodReadR { req, result } => {
                let Some(fpos) = self.pending.remove(&req) else {
                    return;
                };
                match result {
                    Ok((n, data)) => {
                        self.acc_bytes += n;
                        if let (Some(buf), Some(d)) = (self.read_buf.as_mut(), data) {
                            let start = (fpos - self.read_base) as usize;
                            let end = (start + d.len()).min(buf.len());
                            buf[start..end].copy_from_slice(&d[..end - start]);
                        }
                    }
                    Err(e) => self.failed = Some(e),
                }
                self.scatter_done(ctx);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Cluster wrapper
// ---------------------------------------------------------------------

/// A PVFS deployment: one manager + N iods.
pub struct PvfsCluster {
    /// The underlying simulation.
    pub sim: Simulation<PvfsMsg>,
    mgr: NodeId,
    iods: Vec<NodeId>,
    costs: PvfsCosts,
}

impl PvfsCluster {
    /// Build `PVFS-n` (n iods).
    pub fn new(niods: usize, seed: u64, costs: PvfsCosts) -> PvfsCluster {
        let mut sim = Simulation::new(seed);
        // The manager's metadata disk uses the model's positioning knob
        // (inode-file + directory updates are all random accesses).
        let mut mgr_cfg = NodeConfig::default();
        mgr_cfg.disk.positioning = costs.mgr_disk_positioning;
        let mgr = sim.add_node(PvfsMgr::new(costs), mgr_cfg);
        let iods: Vec<NodeId> = (0..niods)
            .map(|_| sim.add_node(PvfsIod::new(costs), NodeConfig::default()))
            .collect();
        PvfsCluster {
            sim,
            mgr,
            iods,
            costs,
        }
    }

    /// The manager node id.
    pub fn manager(&self) -> NodeId {
        self.mgr
    }

    /// Attach a client.
    pub fn add_client<W: Workload>(&mut self, workload: W) -> NodeId {
        let client = PvfsClient::new(self.mgr, self.iods.clone(), self.costs, Box::new(workload));
        self.sim.add_node(client, NodeConfig::default())
    }

    /// Statistics of an attached client.
    pub fn client_stats(&self, id: NodeId) -> Option<&ClientStats> {
        self.sim.node_ref::<PvfsClient>(id).map(|c| &c.stats)
    }

    /// Run for `d` of virtual time.
    pub fn run_for(&mut self, d: Dur) {
        self.sim.run_for(d);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorrento::cluster::ScriptedWorkload;

    #[test]
    fn stripe_mapping_round_robin() {
        // 3 full blocks over 2 iods starting at block 0.
        let ext = stripe_extents(0, 3 * STRIPE_UNIT, 2);
        assert_eq!(ext.len(), 3);
        assert_eq!(ext[0], (0, 0, STRIPE_UNIT, 0));
        assert_eq!(ext[1], (1, 0, STRIPE_UNIT, STRIPE_UNIT));
        assert_eq!(ext[2], (0, STRIPE_UNIT, STRIPE_UNIT, 2 * STRIPE_UNIT));
        // Mid-block start.
        let ext = stripe_extents(STRIPE_UNIT / 2, STRIPE_UNIT, 2);
        assert_eq!(ext.len(), 2);
        assert_eq!(ext[0].0, 0);
        assert_eq!(ext[0].2, STRIPE_UNIT / 2);
        assert_eq!(ext[1].0, 1);
    }

    #[test]
    fn pvfs_roundtrip() {
        let mut c = PvfsCluster::new(4, 1, PvfsCosts::default());
        let data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        let id = c.add_client(ScriptedWorkload::new(vec![
            ClientOp::Create { path: "/f".into() },
            ClientOp::write_bytes(0, data.clone()),
            ClientOp::Close,
            ClientOp::Open { path: "/f".into(), write: false },
            ClientOp::Read { offset: 0, len: 300_000 },
            ClientOp::Close,
        ]));
        c.run_for(Dur::secs(30));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0, "{:?}", s.last_error);
        assert_eq!(s.last_read.as_deref(), Some(&data[..]));
    }

    #[test]
    fn pvfs_metadata_latency_dominated_by_mgr_disk() {
        // Figure 9: PVFS-8 create ≈ 60 ms vs NFS 0.67 ms: the manager's
        // random metadata-disk accesses dominate.
        let mut c = PvfsCluster::new(8, 2, PvfsCosts::default());
        let id = c.add_client(ScriptedWorkload::new(vec![
            ClientOp::Create { path: "/lat".into() },
            ClientOp::Close,
        ]));
        c.run_for(Dur::secs(10));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0);
        let create_ms = s
            .latencies
            .iter()
            .find(|(k, _)| *k == "create")
            .map(|(_, d)| d.as_millis_f64())
            .unwrap();
        assert!(create_ms > 20.0 && create_ms < 120.0, "create {create_ms} ms");
    }

    #[test]
    fn pvfs_unlink_purges_iods() {
        let mut c = PvfsCluster::new(3, 3, PvfsCosts::default());
        let id = c.add_client(ScriptedWorkload::new(vec![
            ClientOp::Create { path: "/gone".into() },
            ClientOp::write_synth(0, 1_000_000),
            ClientOp::Close,
            ClientOp::Unlink { path: "/gone".into() },
            ClientOp::Stat { path: "/gone".into() },
        ]));
        c.run_for(Dur::secs(30));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 1); // only the final stat
        assert_eq!(s.last_error, Some(Error::NotFound));
    }

    #[test]
    fn pvfs_synthetic_bulk() {
        let mut c = PvfsCluster::new(8, 4, PvfsCosts::default());
        let id = c.add_client(ScriptedWorkload::new(vec![
            ClientOp::Create { path: "/bulk".into() },
            ClientOp::write_synth(0, 64 << 20),
            ClientOp::Close,
            ClientOp::Open { path: "/bulk".into(), write: false },
            ClientOp::Read { offset: 0, len: 64 << 20 },
            ClientOp::Close,
        ]));
        c.run_for(Dur::secs(120));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0, "{:?}", s.last_error);
        assert_eq!(s.bytes_read, 64 << 20);
        assert_eq!(s.bytes_written, 64 << 20);
    }
}
