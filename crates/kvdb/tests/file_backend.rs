//! FileBackend integration: the database survives real process-style
//! reopen cycles on actual files, including checkpoint + WAL interplay.

use sorrento_kvdb::{Batch, Db, DbConfig, FileBackend};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("sorrento-kvdb-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn reopen_cycles_preserve_state() {
    let dir = tmpdir("reopen");
    // Session 1: writes + a checkpoint + more writes.
    {
        let mut db = Db::open(FileBackend::open(&dir).unwrap(), DbConfig::default()).unwrap();
        for i in 0..50u32 {
            db.put(format!("k{i}"), format!("v{i}")).unwrap();
        }
        db.checkpoint().unwrap();
        for i in 50..100u32 {
            db.put(format!("k{i}"), format!("v{i}")).unwrap();
        }
        db.delete("k10").unwrap();
    }
    // Session 2: recovery sees checkpoint + WAL tail.
    {
        let db = Db::open(FileBackend::open(&dir).unwrap(), DbConfig::default()).unwrap();
        assert_eq!(db.len(), 99);
        assert_eq!(db.get("k99"), Some(&b"v99"[..]));
        assert_eq!(db.get("k10"), None);
        assert_eq!(db.recovered_batches(), 51); // 50 puts + 1 delete
    }
    // Session 3: atomic batch, then verify in session 4.
    {
        let mut db = Db::open(FileBackend::open(&dir).unwrap(), DbConfig::default()).unwrap();
        let mut b = Batch::new();
        b.put("batch-a", "1").put("batch-b", "2").delete("k0");
        db.apply(b).unwrap();
    }
    {
        let db = Db::open(FileBackend::open(&dir).unwrap(), DbConfig::default()).unwrap();
        assert_eq!(db.get("batch-a"), Some(&b"1"[..]));
        assert_eq!(db.get("k0"), None);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_wal_file_recovers_prefix() {
    let dir = tmpdir("torn");
    {
        let mut db = Db::open(FileBackend::open(&dir).unwrap(), DbConfig::default()).unwrap();
        db.put("a", "1").unwrap();
        db.put("b", "2").unwrap();
    }
    // Tear the physical WAL (simulating a crash mid-append).
    let wal = dir.join("wal");
    let data = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &data[..data.len() - 3]).unwrap();
    {
        let db = Db::open(FileBackend::open(&dir).unwrap(), DbConfig::default()).unwrap();
        assert_eq!(db.get("a"), Some(&b"1"[..]));
        assert_eq!(db.get("b"), None); // torn tail dropped atomically
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
