//! Property tests: the database must behave exactly like a `BTreeMap`
//! under arbitrary op sequences, including across checkpoints and
//! crash/recovery cycles at arbitrary points.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sorrento_kvdb::{Batch, Db, DbConfig, MemBackend};

#[derive(Debug, Clone)]
enum Action {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Batch(Vec<(Vec<u8>, Option<Vec<u8>>)>),
    Checkpoint,
    CrashRecover,
}

fn key() -> impl Strategy<Value = Vec<u8>> {
    // Small key space so collisions (overwrites/deletes of live keys) are common.
    prop::collection::vec(0u8..8, 1..4)
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (key(), prop::collection::vec(any::<u8>(), 0..16)).prop_map(|(k, v)| Action::Put(k, v)),
        2 => key().prop_map(Action::Delete),
        2 => prop::collection::vec((key(), prop::option::of(prop::collection::vec(any::<u8>(), 0..8))), 1..5)
            .prop_map(Action::Batch),
        1 => Just(Action::Checkpoint),
        1 => Just(Action::CrashRecover),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn db_matches_btreemap_model(actions in prop::collection::vec(action(), 1..60)) {
        let mut db = Db::open(MemBackend::new(), DbConfig { checkpoint_wal_bytes: 512, ..DbConfig::default() }).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for a in actions {
            match a {
                Action::Put(k, v) => {
                    db.put(&k, &v).unwrap();
                    model.insert(k, v);
                }
                Action::Delete(k) => {
                    let was = db.delete(&k).unwrap();
                    let was_model = model.remove(&k).is_some();
                    prop_assert_eq!(was, was_model);
                }
                Action::Batch(ops) => {
                    let mut b = Batch::new();
                    for (k, v) in &ops {
                        match v {
                            Some(v) => { b.put(k, v); }
                            None => { b.delete(k); }
                        }
                    }
                    db.apply(b).unwrap();
                    for (k, v) in ops {
                        match v {
                            Some(v) => { model.insert(k, v); }
                            None => { model.remove(&k); }
                        }
                    }
                }
                Action::Checkpoint => db.checkpoint().unwrap(),
                Action::CrashRecover => {
                    // A crash image is just the backend at this instant:
                    // everything applied so far was WAL-synced, so nothing
                    // may be lost.
                    let backend = db.into_backend();
                    db = Db::open(backend, DbConfig { checkpoint_wal_bytes: 512, ..DbConfig::default() }).unwrap();
                }
            }
            // Full-state equivalence after every action.
            prop_assert_eq!(db.len(), model.len());
            for (k, v) in &model {
                prop_assert_eq!(db.get(k), Some(v.as_slice()));
            }
        }
    }

    #[test]
    fn torn_tail_never_corrupts_earlier_state(
        puts in prop::collection::vec((key(), prop::collection::vec(any::<u8>(), 0..8)), 1..20),
        tear_back in 1usize..16,
    ) {
        // Apply all puts, then tear off `tear_back` bytes from the WAL end:
        // recovery must yield a prefix of the batch sequence.
        let mut db = Db::open(MemBackend::new(), DbConfig { checkpoint_wal_bytes: usize::MAX, ..DbConfig::default() }).unwrap();
        let mut prefix_states: Vec<BTreeMap<Vec<u8>, Vec<u8>>> = vec![BTreeMap::new()];
        let mut model = BTreeMap::new();
        for (k, v) in &puts {
            db.put(k, v).unwrap();
            model.insert(k.clone(), v.clone());
            prefix_states.push(model.clone());
        }
        let mut backend = db.into_backend();
        let len = backend.len("wal");
        backend.tear("wal", len.saturating_sub(tear_back));
        let db2 = Db::open(backend, DbConfig::default()).unwrap();
        let recovered: BTreeMap<Vec<u8>, Vec<u8>> = db2
            .range(..)
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        prop_assert!(
            prefix_states.contains(&recovered),
            "recovered state is not a prefix state"
        );
    }
}
