//! The database proper: an in-memory ordered map, a write-ahead log for
//! durability, and snapshot checkpoints that bound recovery time.

use std::collections::BTreeMap;
use std::io;
use std::ops::RangeBounds;

use crate::backend::Backend;
use crate::wal;

/// One mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert or overwrite `key` with `value`.
    Put(Vec<u8>, Vec<u8>),
    /// Remove `key` (no-op if absent).
    Delete(Vec<u8>),
}

/// An atomic group of mutations: either every op in the batch survives a
/// crash, or none does.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    pub(crate) ops: Vec<Op>,
}

impl Batch {
    /// Empty batch.
    pub fn new() -> Batch {
        Batch::default()
    }
    /// Queue a put.
    pub fn put(&mut self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> &mut Batch {
        self.ops
            .push(Op::Put(key.as_ref().to_vec(), value.as_ref().to_vec()));
        self
    }
    /// Queue a delete.
    pub fn delete(&mut self, key: impl AsRef<[u8]>) -> &mut Batch {
        self.ops.push(Op::Delete(key.as_ref().to_vec()));
        self
    }
    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Checkpoint automatically once the WAL exceeds this many bytes.
    pub checkpoint_wal_bytes: usize,
    /// Checkpoint automatically every this many applied batches
    /// (`None` = byte-threshold only). This is the knob that bounds the
    /// replay tail — and therefore crash-recovery and hot-standby
    /// failover time — by a fixed operation count instead of a byte
    /// budget.
    pub checkpoint_every_batches: Option<u64>,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            // Matches the spirit of BDB's default log regime: checkpoints
            // are rare relative to individual namespace operations.
            checkpoint_wal_bytes: 4 * 1024 * 1024,
            checkpoint_every_batches: None,
        }
    }
}

/// What [`Db::take_shipment`] drains: the shipping tap's view of
/// everything appended since the previous drain. When `ckpt` is present
/// it subsumes all earlier records — the receiver replaces its base
/// image with it and keeps only `recs` as the new tail.
#[derive(Debug, Default)]
pub struct Shipment {
    /// A full checkpoint image (present when the source checkpointed
    /// since the last drain).
    pub ckpt: Option<Vec<u8>>,
    /// Encoded WAL records appended after `ckpt` (or since the last
    /// drain), in order.
    pub recs: Vec<Vec<u8>>,
}

impl Shipment {
    /// Whether the shipment carries anything.
    pub fn is_empty(&self) -> bool {
        self.ckpt.is_none() && self.recs.is_empty()
    }
}

/// The WAL-shipping tap: a copy of every appended record (and each
/// checkpoint image), queued for a replication consumer.
#[derive(Debug, Default)]
struct ShipTap {
    pending_ckpt: Option<Vec<u8>>,
    recs: Vec<Vec<u8>>,
}

const CKPT_FILE: &str = "checkpoint";
const WAL_FILE: &str = "wal";

/// An ordered key-value store with WAL + checkpoint durability.
pub struct Db<B: Backend> {
    mem: BTreeMap<Vec<u8>, Vec<u8>>,
    backend: B,
    wal_bytes: usize,
    batches_since_ckpt: u64,
    config: DbConfig,
    ship: Option<ShipTap>,
    /// Batches recovered from the WAL at open time (observability/tests).
    recovered_batches: usize,
}

impl<B: Backend> Db<B> {
    /// Open the store, running crash recovery: load the checkpoint (if
    /// any), then replay intact WAL records, discarding a torn tail.
    pub fn open(backend: B, config: DbConfig) -> io::Result<Db<B>> {
        let mut mem = BTreeMap::new();
        if let Some(ckpt) = backend.read(CKPT_FILE)? {
            // The checkpoint is itself one big record; a torn checkpoint
            // (impossible under atomic replace, but cheap to guard) falls
            // back to empty.
            for batch in wal::replay(&ckpt) {
                apply_to(&mut mem, &batch);
            }
        }
        let wal_img = backend.read(WAL_FILE)?.unwrap_or_default();
        let batches = wal::replay(&wal_img);
        let recovered_batches = batches.len();
        for batch in &batches {
            apply_to(&mut mem, batch);
        }
        Ok(Db {
            mem,
            backend,
            wal_bytes: wal_img.len(),
            batches_since_ckpt: recovered_batches as u64,
            config,
            ship: None,
            recovered_batches,
        })
    }

    /// Read a key.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Option<&[u8]> {
        self.mem.get(key.as_ref()).map(Vec::as_slice)
    }

    /// Whether a key is present.
    pub fn contains(&self, key: impl AsRef<[u8]>) -> bool {
        self.mem.contains_key(key.as_ref())
    }

    /// Write a single key durably.
    pub fn put(&mut self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> io::Result<()> {
        let mut b = Batch::new();
        b.put(key, value);
        self.apply(b)
    }

    /// Delete a single key durably. Returns whether it was present.
    pub fn delete(&mut self, key: impl AsRef<[u8]>) -> io::Result<bool> {
        let present = self.contains(key.as_ref());
        let mut b = Batch::new();
        b.delete(key);
        self.apply(b)?;
        Ok(present)
    }

    /// Apply a batch atomically: the WAL record is appended (and synced by
    /// the backend) before the in-memory map changes.
    pub fn apply(&mut self, batch: Batch) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let rec = wal::encode_record(&batch.ops);
        self.backend.append(WAL_FILE, &rec)?;
        self.wal_bytes += rec.len();
        if let Some(tap) = &mut self.ship {
            tap.recs.push(rec);
        }
        self.batches_since_ckpt += 1;
        apply_to(&mut self.mem, &batch.ops);
        let due_by_bytes = self.wal_bytes >= self.config.checkpoint_wal_bytes;
        let due_by_count = self
            .config
            .checkpoint_every_batches
            .is_some_and(|n| self.batches_since_ckpt >= n);
        if due_by_bytes || due_by_count {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Write a full snapshot and truncate the WAL.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let img = self.checkpoint_image();
        self.backend.write_atomic(CKPT_FILE, &img)?;
        self.backend.truncate(WAL_FILE)?;
        self.wal_bytes = 0;
        self.batches_since_ckpt = 0;
        if let Some(tap) = &mut self.ship {
            // The image subsumes every record queued before it: the
            // receiver replaces its base with the image and an empty tail.
            tap.recs.clear();
            tap.pending_ckpt = Some(img);
        }
        Ok(())
    }

    /// Encode the current contents as a single checkpoint record, without
    /// touching the backend. Used to force-ship a full image to a standby
    /// that has fallen behind the shipped tail.
    pub fn checkpoint_image(&self) -> Vec<u8> {
        let ops: Vec<Op> = self
            .mem
            .iter()
            .map(|(k, v)| Op::Put(k.clone(), v.clone()))
            .collect();
        wal::encode_record(&ops)
    }

    /// Start taping every applied record (and each checkpoint image) for
    /// [`Db::take_shipment`]. Idempotent; taping starts empty.
    pub fn enable_shipping(&mut self) {
        if self.ship.is_none() {
            self.ship = Some(ShipTap::default());
        }
    }

    /// Drain everything taped since the last drain. Empty shipments are
    /// normal (nothing happened) and cheap.
    pub fn take_shipment(&mut self) -> Shipment {
        match &mut self.ship {
            Some(tap) => Shipment {
                ckpt: tap.pending_ckpt.take(),
                recs: std::mem::take(&mut tap.recs),
            },
            None => Shipment::default(),
        }
    }

    /// Insert a key into memory only — no WAL record, no shipping, no
    /// checkpoint trigger. Bulk-preseed path for benchmarks: callers must
    /// [`Db::checkpoint`] afterwards if they want the data durable.
    pub fn load_unlogged(&mut self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) {
        self.mem
            .insert(key.as_ref().to_vec(), value.as_ref().to_vec());
    }

    /// Batches applied since the last checkpoint — the replay tail a
    /// crash-restart (or a standby takeover) would have to re-run.
    pub fn batches_since_checkpoint(&self) -> u64 {
        self.batches_since_ckpt
    }

    /// Change the batch-count checkpoint trigger on an open store.
    pub fn set_checkpoint_every_batches(&mut self, every: Option<u64>) {
        self.config.checkpoint_every_batches = every;
    }

    /// Iterate `(key, value)` pairs whose key starts with `prefix`, in
    /// key order.
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a [u8], &'a [u8])> + 'a {
        self.mem
            .range(prefix.to_vec()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Iterate `(key, value)` pairs in a key range, in key order.
    pub fn range<R: RangeBounds<Vec<u8>>>(
        &self,
        range: R,
    ) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.mem
            .range(range)
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Bytes currently in the WAL (drops to zero at each checkpoint).
    pub fn wal_bytes(&self) -> usize {
        self.wal_bytes
    }

    /// How many WAL batches the last [`Db::open`] replayed.
    pub fn recovered_batches(&self) -> usize {
        self.recovered_batches
    }

    /// Consume the store and return the backend (tests snapshot it to
    /// simulate crashes).
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Borrow the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }
}

/// Assemble a [`MemBackend`](crate::backend::MemBackend) from shipped
/// state: the latest checkpoint image plus the WAL tail records that
/// followed it. [`Db::open`] on the result replays exactly that tail —
/// which is how a hot standby materialises the primary's store, and why
/// its takeover time is bounded by the uncheckpointed tail length.
pub fn assemble_shipped(ckpt: Option<&[u8]>, recs: &[Vec<u8>]) -> crate::backend::MemBackend {
    let mut backend = crate::backend::MemBackend::new();
    if let Some(img) = ckpt {
        // MemBackend writes are infallible.
        backend.write_atomic(CKPT_FILE, img).expect("mem write");
    }
    for rec in recs {
        backend.append(WAL_FILE, rec).expect("mem append");
    }
    backend
}

fn apply_to(mem: &mut BTreeMap<Vec<u8>, Vec<u8>>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(k, v) => {
                mem.insert(k.clone(), v.clone());
            }
            Op::Delete(k) => {
                mem.remove(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn open_mem() -> Db<MemBackend> {
        Db::open(MemBackend::new(), DbConfig::default()).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let mut db = open_mem();
        assert!(db.is_empty());
        db.put("k1", "v1").unwrap();
        db.put("k2", "v2").unwrap();
        assert_eq!(db.get("k1"), Some(&b"v1"[..]));
        assert_eq!(db.len(), 2);
        assert!(db.delete("k1").unwrap());
        assert!(!db.delete("k1").unwrap());
        assert_eq!(db.get("k1"), None);
    }

    #[test]
    fn overwrite_updates_value() {
        let mut db = open_mem();
        db.put("k", "old").unwrap();
        db.put("k", "new").unwrap();
        assert_eq!(db.get("k"), Some(&b"new"[..]));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn recovery_replays_wal() {
        let mut db = open_mem();
        db.put("a", "1").unwrap();
        db.put("b", "2").unwrap();
        db.delete("a").unwrap();
        let backend = db.into_backend();
        let db2 = Db::open(backend, DbConfig::default()).unwrap();
        assert_eq!(db2.recovered_batches(), 3);
        assert_eq!(db2.get("a"), None);
        assert_eq!(db2.get("b"), Some(&b"2"[..]));
    }

    #[test]
    fn recovery_after_checkpoint() {
        let mut db = open_mem();
        db.put("a", "1").unwrap();
        db.checkpoint().unwrap();
        db.put("b", "2").unwrap();
        let db2 = Db::open(db.into_backend(), DbConfig::default()).unwrap();
        // Only post-checkpoint batches replay from the WAL.
        assert_eq!(db2.recovered_batches(), 1);
        assert_eq!(db2.get("a"), Some(&b"1"[..]));
        assert_eq!(db2.get("b"), Some(&b"2"[..]));
    }

    #[test]
    fn torn_batch_is_all_or_nothing() {
        let mut db = open_mem();
        db.put("base", "x").unwrap();
        let mut batch = Batch::new();
        batch.put("p", "1").put("q", "2").delete("base");
        db.apply(batch).unwrap();
        let mut backend = db.into_backend();
        // Tear one byte off the WAL: the whole second batch must vanish.
        let len = backend.len("wal");
        backend.tear("wal", len - 1);
        let db2 = Db::open(backend, DbConfig::default()).unwrap();
        assert_eq!(db2.recovered_batches(), 1);
        assert_eq!(db2.get("base"), Some(&b"x"[..]));
        assert_eq!(db2.get("p"), None);
        assert_eq!(db2.get("q"), None);
    }

    #[test]
    fn auto_checkpoint_bounds_wal() {
        let mut db = Db::open(
            MemBackend::new(),
            DbConfig {
                checkpoint_wal_bytes: 64,
                ..DbConfig::default()
            },
        )
        .unwrap();
        for i in 0..100u32 {
            db.put(i.to_le_bytes(), [0u8; 32]).unwrap();
        }
        assert!(db.wal_bytes() < 128);
        assert_eq!(db.len(), 100);
        let db2 = Db::open(db.into_backend(), DbConfig::default()).unwrap();
        assert_eq!(db2.len(), 100);
    }

    #[test]
    fn scan_prefix_in_order() {
        let mut db = open_mem();
        db.put("/a/1", "x").unwrap();
        db.put("/a/2", "y").unwrap();
        db.put("/b/1", "z").unwrap();
        db.put("/a!", "w").unwrap(); // '!' < '/' so not under /a/
        let keys: Vec<&[u8]> = db.scan_prefix(b"/a/").map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b"/a/1"[..], &b"/a/2"[..]]);
    }

    #[test]
    fn range_scan() {
        let mut db = open_mem();
        for k in ["a", "b", "c", "d"] {
            db.put(k, "v").unwrap();
        }
        let keys: Vec<&[u8]> = db
            .range(b"b".to_vec()..b"d".to_vec())
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![&b"b"[..], &b"c"[..]]);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut db = open_mem();
        let before = db.wal_bytes();
        db.apply(Batch::new()).unwrap();
        assert_eq!(db.wal_bytes(), before);
    }

    #[test]
    fn checkpoint_interval_bounds_replay_tail() {
        // Satellite: with checkpoint_every_batches = 8, a crash-restart
        // never replays more than 8 batches no matter how much history
        // accumulated before the crash.
        let cfg = DbConfig {
            checkpoint_every_batches: Some(8),
            ..DbConfig::default()
        };
        let mut db = Db::open(MemBackend::new(), cfg).unwrap();
        for i in 0..100u32 {
            db.put(i.to_le_bytes(), [7u8; 16]).unwrap();
        }
        assert!(db.batches_since_checkpoint() < 8);
        let db2 = Db::open(db.into_backend(), cfg).unwrap();
        assert!(
            db2.recovered_batches() < 8,
            "replay tail {} not bounded by interval",
            db2.recovered_batches()
        );
        assert_eq!(db2.len(), 100);
    }

    #[test]
    fn shipping_mirrors_primary_state() {
        let mut db = open_mem();
        db.enable_shipping();
        db.put("a", "1").unwrap();
        db.put("b", "2").unwrap();
        db.checkpoint().unwrap();
        db.put("c", "3").unwrap();
        db.delete("a").unwrap();
        let s = db.take_shipment();
        assert!(s.ckpt.is_some());
        assert_eq!(s.recs.len(), 2); // only post-checkpoint records survive
        let standby = Db::open(assemble_shipped(s.ckpt.as_deref(), &s.recs), DbConfig::default())
            .unwrap();
        assert_eq!(standby.recovered_batches(), 2);
        assert_eq!(standby.get("a"), None);
        assert_eq!(standby.get("b"), Some(&b"2"[..]));
        assert_eq!(standby.get("c"), Some(&b"3"[..]));
        // Subsequent drains only carry the delta.
        db.put("d", "4").unwrap();
        let s2 = db.take_shipment();
        assert!(s2.ckpt.is_none());
        assert_eq!(s2.recs.len(), 1);
        assert!(db.take_shipment().is_empty());
    }

    #[test]
    fn incremental_shipments_compose() {
        // Apply every drained shipment in order onto a growing receiver
        // image: the final replayed store equals the source.
        let mut db = open_mem();
        db.enable_shipping();
        let (mut r_ckpt, mut r_recs): (Option<Vec<u8>>, Vec<Vec<u8>>) = (None, Vec::new());
        for round in 0..6u32 {
            db.put(format!("k{round}"), format!("v{round}")).unwrap();
            if round == 3 {
                db.checkpoint().unwrap();
            }
            let s = db.take_shipment();
            if let Some(img) = s.ckpt {
                r_ckpt = Some(img);
                r_recs.clear();
            }
            r_recs.extend(s.recs);
        }
        let standby =
            Db::open(assemble_shipped(r_ckpt.as_deref(), &r_recs), DbConfig::default()).unwrap();
        assert_eq!(standby.len(), db.len());
        for round in 0..6u32 {
            assert_eq!(
                standby.get(format!("k{round}")),
                db.get(format!("k{round}"))
            );
        }
    }

    #[test]
    fn load_unlogged_skips_wal_and_shipping() {
        let mut db = open_mem();
        db.enable_shipping();
        db.load_unlogged("bulk", "x");
        assert_eq!(db.get("bulk"), Some(&b"x"[..]));
        assert_eq!(db.wal_bytes(), 0);
        assert!(db.take_shipment().is_empty());
        // Durable only after an explicit checkpoint.
        db.checkpoint().unwrap();
        let db2 = Db::open(db.into_backend(), DbConfig::default()).unwrap();
        assert_eq!(db2.get("bulk"), Some(&b"x"[..]));
    }

    #[test]
    fn corrupted_wal_byte_drops_tail_only() {
        let mut db = open_mem();
        db.put("a", "1").unwrap();
        let cut = db.backend().len("wal");
        db.put("b", "2").unwrap();
        db.put("c", "3").unwrap();
        let mut backend = db.into_backend();
        backend.corrupt("wal", cut + 9); // inside record 2's body
        let db2 = Db::open(backend, DbConfig::default()).unwrap();
        assert_eq!(db2.get("a"), Some(&b"1"[..]));
        assert_eq!(db2.get("b"), None);
        assert_eq!(db2.get("c"), None); // after corruption: dropped too
    }
}
