//! The database proper: an in-memory ordered map, a write-ahead log for
//! durability, and snapshot checkpoints that bound recovery time.

use std::collections::BTreeMap;
use std::io;
use std::ops::RangeBounds;

use crate::backend::Backend;
use crate::wal;

/// One mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert or overwrite `key` with `value`.
    Put(Vec<u8>, Vec<u8>),
    /// Remove `key` (no-op if absent).
    Delete(Vec<u8>),
}

/// An atomic group of mutations: either every op in the batch survives a
/// crash, or none does.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    pub(crate) ops: Vec<Op>,
}

impl Batch {
    /// Empty batch.
    pub fn new() -> Batch {
        Batch::default()
    }
    /// Queue a put.
    pub fn put(&mut self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> &mut Batch {
        self.ops
            .push(Op::Put(key.as_ref().to_vec(), value.as_ref().to_vec()));
        self
    }
    /// Queue a delete.
    pub fn delete(&mut self, key: impl AsRef<[u8]>) -> &mut Batch {
        self.ops.push(Op::Delete(key.as_ref().to_vec()));
        self
    }
    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Checkpoint automatically once the WAL exceeds this many bytes.
    pub checkpoint_wal_bytes: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            // Matches the spirit of BDB's default log regime: checkpoints
            // are rare relative to individual namespace operations.
            checkpoint_wal_bytes: 4 * 1024 * 1024,
        }
    }
}

const CKPT_FILE: &str = "checkpoint";
const WAL_FILE: &str = "wal";

/// An ordered key-value store with WAL + checkpoint durability.
pub struct Db<B: Backend> {
    mem: BTreeMap<Vec<u8>, Vec<u8>>,
    backend: B,
    wal_bytes: usize,
    config: DbConfig,
    /// Batches recovered from the WAL at open time (observability/tests).
    recovered_batches: usize,
}

impl<B: Backend> Db<B> {
    /// Open the store, running crash recovery: load the checkpoint (if
    /// any), then replay intact WAL records, discarding a torn tail.
    pub fn open(backend: B, config: DbConfig) -> io::Result<Db<B>> {
        let mut mem = BTreeMap::new();
        if let Some(ckpt) = backend.read(CKPT_FILE)? {
            // The checkpoint is itself one big record; a torn checkpoint
            // (impossible under atomic replace, but cheap to guard) falls
            // back to empty.
            for batch in wal::replay(&ckpt) {
                apply_to(&mut mem, &batch);
            }
        }
        let wal_img = backend.read(WAL_FILE)?.unwrap_or_default();
        let batches = wal::replay(&wal_img);
        let recovered_batches = batches.len();
        for batch in &batches {
            apply_to(&mut mem, batch);
        }
        Ok(Db {
            mem,
            backend,
            wal_bytes: wal_img.len(),
            config,
            recovered_batches,
        })
    }

    /// Read a key.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Option<&[u8]> {
        self.mem.get(key.as_ref()).map(Vec::as_slice)
    }

    /// Whether a key is present.
    pub fn contains(&self, key: impl AsRef<[u8]>) -> bool {
        self.mem.contains_key(key.as_ref())
    }

    /// Write a single key durably.
    pub fn put(&mut self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> io::Result<()> {
        let mut b = Batch::new();
        b.put(key, value);
        self.apply(b)
    }

    /// Delete a single key durably. Returns whether it was present.
    pub fn delete(&mut self, key: impl AsRef<[u8]>) -> io::Result<bool> {
        let present = self.contains(key.as_ref());
        let mut b = Batch::new();
        b.delete(key);
        self.apply(b)?;
        Ok(present)
    }

    /// Apply a batch atomically: the WAL record is appended (and synced by
    /// the backend) before the in-memory map changes.
    pub fn apply(&mut self, batch: Batch) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let rec = wal::encode_record(&batch.ops);
        self.backend.append(WAL_FILE, &rec)?;
        self.wal_bytes += rec.len();
        apply_to(&mut self.mem, &batch.ops);
        if self.wal_bytes >= self.config.checkpoint_wal_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Write a full snapshot and truncate the WAL.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let ops: Vec<Op> = self
            .mem
            .iter()
            .map(|(k, v)| Op::Put(k.clone(), v.clone()))
            .collect();
        let img = wal::encode_record(&ops);
        self.backend.write_atomic(CKPT_FILE, &img)?;
        self.backend.truncate(WAL_FILE)?;
        self.wal_bytes = 0;
        Ok(())
    }

    /// Iterate `(key, value)` pairs whose key starts with `prefix`, in
    /// key order.
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a [u8], &'a [u8])> + 'a {
        self.mem
            .range(prefix.to_vec()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Iterate `(key, value)` pairs in a key range, in key order.
    pub fn range<R: RangeBounds<Vec<u8>>>(
        &self,
        range: R,
    ) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.mem
            .range(range)
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Bytes currently in the WAL (drops to zero at each checkpoint).
    pub fn wal_bytes(&self) -> usize {
        self.wal_bytes
    }

    /// How many WAL batches the last [`Db::open`] replayed.
    pub fn recovered_batches(&self) -> usize {
        self.recovered_batches
    }

    /// Consume the store and return the backend (tests snapshot it to
    /// simulate crashes).
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Borrow the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }
}

fn apply_to(mem: &mut BTreeMap<Vec<u8>, Vec<u8>>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(k, v) => {
                mem.insert(k.clone(), v.clone());
            }
            Op::Delete(k) => {
                mem.remove(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn open_mem() -> Db<MemBackend> {
        Db::open(MemBackend::new(), DbConfig::default()).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let mut db = open_mem();
        assert!(db.is_empty());
        db.put("k1", "v1").unwrap();
        db.put("k2", "v2").unwrap();
        assert_eq!(db.get("k1"), Some(&b"v1"[..]));
        assert_eq!(db.len(), 2);
        assert!(db.delete("k1").unwrap());
        assert!(!db.delete("k1").unwrap());
        assert_eq!(db.get("k1"), None);
    }

    #[test]
    fn overwrite_updates_value() {
        let mut db = open_mem();
        db.put("k", "old").unwrap();
        db.put("k", "new").unwrap();
        assert_eq!(db.get("k"), Some(&b"new"[..]));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn recovery_replays_wal() {
        let mut db = open_mem();
        db.put("a", "1").unwrap();
        db.put("b", "2").unwrap();
        db.delete("a").unwrap();
        let backend = db.into_backend();
        let db2 = Db::open(backend, DbConfig::default()).unwrap();
        assert_eq!(db2.recovered_batches(), 3);
        assert_eq!(db2.get("a"), None);
        assert_eq!(db2.get("b"), Some(&b"2"[..]));
    }

    #[test]
    fn recovery_after_checkpoint() {
        let mut db = open_mem();
        db.put("a", "1").unwrap();
        db.checkpoint().unwrap();
        db.put("b", "2").unwrap();
        let db2 = Db::open(db.into_backend(), DbConfig::default()).unwrap();
        // Only post-checkpoint batches replay from the WAL.
        assert_eq!(db2.recovered_batches(), 1);
        assert_eq!(db2.get("a"), Some(&b"1"[..]));
        assert_eq!(db2.get("b"), Some(&b"2"[..]));
    }

    #[test]
    fn torn_batch_is_all_or_nothing() {
        let mut db = open_mem();
        db.put("base", "x").unwrap();
        let mut batch = Batch::new();
        batch.put("p", "1").put("q", "2").delete("base");
        db.apply(batch).unwrap();
        let mut backend = db.into_backend();
        // Tear one byte off the WAL: the whole second batch must vanish.
        let len = backend.len("wal");
        backend.tear("wal", len - 1);
        let db2 = Db::open(backend, DbConfig::default()).unwrap();
        assert_eq!(db2.recovered_batches(), 1);
        assert_eq!(db2.get("base"), Some(&b"x"[..]));
        assert_eq!(db2.get("p"), None);
        assert_eq!(db2.get("q"), None);
    }

    #[test]
    fn auto_checkpoint_bounds_wal() {
        let mut db = Db::open(
            MemBackend::new(),
            DbConfig {
                checkpoint_wal_bytes: 64,
            },
        )
        .unwrap();
        for i in 0..100u32 {
            db.put(i.to_le_bytes(), [0u8; 32]).unwrap();
        }
        assert!(db.wal_bytes() < 128);
        assert_eq!(db.len(), 100);
        let db2 = Db::open(db.into_backend(), DbConfig::default()).unwrap();
        assert_eq!(db2.len(), 100);
    }

    #[test]
    fn scan_prefix_in_order() {
        let mut db = open_mem();
        db.put("/a/1", "x").unwrap();
        db.put("/a/2", "y").unwrap();
        db.put("/b/1", "z").unwrap();
        db.put("/a!", "w").unwrap(); // '!' < '/' so not under /a/
        let keys: Vec<&[u8]> = db.scan_prefix(b"/a/").map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b"/a/1"[..], &b"/a/2"[..]]);
    }

    #[test]
    fn range_scan() {
        let mut db = open_mem();
        for k in ["a", "b", "c", "d"] {
            db.put(k, "v").unwrap();
        }
        let keys: Vec<&[u8]> = db
            .range(b"b".to_vec()..b"d".to_vec())
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![&b"b"[..], &b"c"[..]]);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut db = open_mem();
        let before = db.wal_bytes();
        db.apply(Batch::new()).unwrap();
        assert_eq!(db.wal_bytes(), before);
    }

    #[test]
    fn corrupted_wal_byte_drops_tail_only() {
        let mut db = open_mem();
        db.put("a", "1").unwrap();
        let cut = db.backend().len("wal");
        db.put("b", "2").unwrap();
        db.put("c", "3").unwrap();
        let mut backend = db.into_backend();
        backend.corrupt("wal", cut + 9); // inside record 2's body
        let db2 = Db::open(backend, DbConfig::default()).unwrap();
        assert_eq!(db2.get("a"), Some(&b"1"[..]));
        assert_eq!(db2.get("b"), None);
        assert_eq!(db2.get("c"), None); // after corruption: dropped too
    }
}
