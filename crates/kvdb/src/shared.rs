//! Thread-safe wrapper for concurrent embedders.

use std::io;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::backend::Backend;
use crate::db::{Batch, Db, DbConfig};

/// A cloneable, thread-safe handle to a [`Db`]. Reads take a shared lock;
/// writes take the exclusive lock for the WAL append + map update.
pub struct SharedDb<B: Backend> {
    inner: Arc<RwLock<Db<B>>>,
}

impl<B: Backend> Clone for SharedDb<B> {
    fn clone(&self) -> Self {
        SharedDb {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: Backend> SharedDb<B> {
    /// Wrap an open database.
    pub fn new(db: Db<B>) -> SharedDb<B> {
        SharedDb {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Read a key into an owned buffer.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Option<Vec<u8>> {
        self.inner.read().get(key).map(<[u8]>::to_vec)
    }

    /// Durable single-key write.
    pub fn put(&self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> io::Result<()> {
        self.inner.write().put(key, value)
    }

    /// Durable single-key delete; returns whether the key was present.
    pub fn delete(&self, key: impl AsRef<[u8]>) -> io::Result<bool> {
        self.inner.write().delete(key)
    }

    /// Atomic batch application.
    pub fn apply(&self, batch: Batch) -> io::Result<()> {
        self.inner.write().apply(batch)
    }

    /// Force a checkpoint.
    pub fn checkpoint(&self) -> io::Result<()> {
        self.inner.write().checkpoint()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Run `f` with read access to the underlying [`Db`] (e.g. for scans).
    pub fn with<R>(&self, f: impl FnOnce(&Db<B>) -> R) -> R {
        f(&self.inner.read())
    }
}

impl<B: Backend + Default> SharedDb<B> {
    /// Open a fresh store on a default backend.
    pub fn open_default() -> io::Result<SharedDb<B>> {
        Ok(SharedDb::new(Db::open(B::default(), DbConfig::default())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let db: SharedDb<MemBackend> = SharedDb::open_default().unwrap();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..100u32 {
                        let key = format!("t{t}-{i}");
                        db.put(key.as_bytes(), i.to_le_bytes()).unwrap();
                    }
                });
            }
        });
        assert_eq!(db.len(), 400);
        assert_eq!(db.get("t3-99").unwrap(), 99u32.to_le_bytes());
    }

    #[test]
    fn with_gives_scan_access() {
        let db: SharedDb<MemBackend> = SharedDb::open_default().unwrap();
        db.put("/x/1", "a").unwrap();
        db.put("/x/2", "b").unwrap();
        let n = db.with(|d| d.scan_prefix(b"/x/").count());
        assert_eq!(n, 2);
    }
}
