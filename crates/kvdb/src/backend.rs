//! Storage backends for the store's two files (checkpoint + WAL).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Minimal storage interface the database needs: whole-file read, atomic
/// whole-file replace, append, and truncate.
pub trait Backend {
    /// Read the whole named file; `Ok(None)` if it does not exist.
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;
    /// Atomically replace the named file with `data`.
    fn write_atomic(&mut self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Append `data` to the named file, creating it if absent.
    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Truncate the named file to zero length (creating it if absent).
    fn truncate(&mut self, name: &str) -> io::Result<()>;
}

/// In-memory backend. `clone()` is a point-in-time crash image, which the
/// tests use to validate recovery at arbitrary torn-write positions.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    files: HashMap<String, Vec<u8>>,
}

impl MemBackend {
    /// Fresh empty backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// Simulate a torn write: chop the named file down to `len` bytes.
    /// Recovery must treat the truncated tail as a torn record.
    pub fn tear(&mut self, name: &str, len: usize) {
        if let Some(f) = self.files.get_mut(name) {
            f.truncate(len);
        }
    }

    /// Current length of the named file (0 if absent).
    pub fn len(&self, name: &str) -> usize {
        self.files.get(name).map(Vec::len).unwrap_or(0)
    }

    /// Flip one byte at `pos` in the named file (corruption injection).
    pub fn corrupt(&mut self, name: &str, pos: usize) {
        if let Some(f) = self.files.get_mut(name) {
            if pos < f.len() {
                f[pos] ^= 0xFF;
            }
        }
    }
}

impl Backend for MemBackend {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.files.get(name).cloned())
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.files.insert(name.to_owned(), data.to_vec());
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.files
            .entry(name.to_owned())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn truncate(&mut self, name: &str) -> io::Result<()> {
        self.files.insert(name.to_owned(), Vec::new());
        Ok(())
    }
}

/// Real-filesystem backend rooted at a directory. Atomic replace uses the
/// write-to-temp-then-rename idiom.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
}

impl FileBackend {
    /// Open (creating if needed) a backend rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<FileBackend> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FileBackend { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Backend for FileBackend {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.path(name)) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        fs::write(&tmp, data)?;
        fs::rename(&tmp, self.path(name))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)?;
        f.sync_data()
    }

    fn truncate(&mut self, name: &str) -> io::Result<()> {
        fs::write(self.path(name), [])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trip() {
        let mut b = MemBackend::new();
        assert_eq!(b.read("wal").unwrap(), None);
        b.append("wal", b"abc").unwrap();
        b.append("wal", b"def").unwrap();
        assert_eq!(b.read("wal").unwrap().unwrap(), b"abcdef");
        b.write_atomic("ckpt", b"snapshot").unwrap();
        assert_eq!(b.read("ckpt").unwrap().unwrap(), b"snapshot");
        b.truncate("wal").unwrap();
        assert_eq!(b.read("wal").unwrap().unwrap(), b"");
    }

    #[test]
    fn mem_backend_tear_and_corrupt() {
        let mut b = MemBackend::new();
        b.append("wal", b"0123456789").unwrap();
        b.tear("wal", 4);
        assert_eq!(b.read("wal").unwrap().unwrap(), b"0123");
        b.corrupt("wal", 0);
        assert_eq!(b.read("wal").unwrap().unwrap()[0], b'0' ^ 0xFF);
    }

    #[test]
    fn file_backend_round_trip() {
        let dir = std::env::temp_dir().join(format!("kvdb-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.read("wal").unwrap(), None);
        b.append("wal", b"abc").unwrap();
        b.append("wal", b"def").unwrap();
        assert_eq!(b.read("wal").unwrap().unwrap(), b"abcdef");
        b.write_atomic("ckpt", b"snap").unwrap();
        assert_eq!(b.read("ckpt").unwrap().unwrap(), b"snap");
        b.truncate("wal").unwrap();
        assert_eq!(b.read("wal").unwrap().unwrap(), b"");
        fs::remove_dir_all(&dir).unwrap();
    }
}
