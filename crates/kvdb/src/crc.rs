//! CRC-32 (IEEE 802.3 polynomial), table-driven. Guards every WAL record
//! so recovery can detect a torn or corrupted tail.

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// Streaming CRC-32: feed bytes incrementally, then [`finalize`].
/// Lets an encoder fold checksumming into its single append pass
/// instead of re-scanning the finished buffer.
///
/// [`finalize`]: Crc32::finalize
#[derive(Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0u32 }
    }

    /// Absorb more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything absorbed so far. The state is not
    /// consumed: more `update` calls may follow.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
