//! Write-ahead-log record encoding.
//!
//! One WAL record carries one atomic batch. Layout:
//!
//! ```text
//! [body_len: u32 LE] [crc32(body): u32 LE] [body]
//! body := op*          (concatenated)
//! op   := 0x01 [klen u32][key][vlen u32][val]    -- put
//!       | 0x02 [klen u32][key]                   -- delete
//! ```
//!
//! A record whose length field runs past the end of the file, or whose CRC
//! does not match, is a torn tail: recovery stops there and discards it
//! (the batch never committed).

use crate::crc::crc32;
use crate::db::Op;

const OP_PUT: u8 = 0x01;
const OP_DELETE: u8 = 0x02;

/// Serialize a batch body (without the length/crc header).
fn encode_body(ops: &[Op], out: &mut Vec<u8>) {
    for op in ops {
        match op {
            Op::Put(k, v) => {
                out.push(OP_PUT);
                out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                out.extend_from_slice(k);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            Op::Delete(k) => {
                out.push(OP_DELETE);
                out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                out.extend_from_slice(k);
            }
        }
    }
}

/// Serialize one full record (header + body) for appending to the WAL.
pub(crate) fn encode_record(ops: &[Op]) -> Vec<u8> {
    let mut body = Vec::new();
    encode_body(ops, &mut body);
    let mut rec = Vec::with_capacity(8 + body.len());
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn read_slice<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Option<&'a [u8]> {
    let s = buf.get(*pos..*pos + len)?;
    *pos += len;
    Some(s)
}

/// Decode a record body into ops. `None` on any malformed structure.
fn decode_body(body: &[u8]) -> Option<Vec<Op>> {
    let mut ops = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        let tag = body[pos];
        pos += 1;
        let klen = read_u32(body, &mut pos)? as usize;
        let key = read_slice(body, &mut pos, klen)?.to_vec();
        match tag {
            OP_PUT => {
                let vlen = read_u32(body, &mut pos)? as usize;
                let val = read_slice(body, &mut pos, vlen)?.to_vec();
                ops.push(Op::Put(key, val));
            }
            OP_DELETE => ops.push(Op::Delete(key)),
            _ => return None,
        }
    }
    Some(ops)
}

/// Iterate over all intact records in a WAL image, stopping silently at
/// the first torn or corrupt record (everything after it never committed).
pub(crate) fn replay(wal: &[u8]) -> Vec<Vec<Op>> {
    let mut batches = Vec::new();
    let mut pos = 0;
    loop {
        let mut p = pos;
        let Some(len) = read_u32(wal, &mut p) else {
            break;
        };
        let Some(crc) = read_u32(wal, &mut p) else {
            break;
        };
        let Some(body) = read_slice(wal, &mut p, len as usize) else {
            break; // torn tail
        };
        if crc32(body) != crc {
            break; // corrupt tail
        }
        let Some(ops) = decode_body(body) else {
            break;
        };
        batches.push(ops);
        pos = p;
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch1() -> Vec<Op> {
        vec![
            Op::Put(b"alpha".to_vec(), b"1".to_vec()),
            Op::Delete(b"beta".to_vec()),
        ]
    }

    #[test]
    fn round_trip_one_record() {
        let rec = encode_record(&batch1());
        let out = replay(&rec);
        assert_eq!(out, vec![batch1()]);
    }

    #[test]
    fn round_trip_many_records() {
        let mut wal = Vec::new();
        for i in 0..10u8 {
            wal.extend(encode_record(&[Op::Put(vec![i], vec![i, i])]));
        }
        let out = replay(&wal);
        assert_eq!(out.len(), 10);
        assert_eq!(out[7], vec![Op::Put(vec![7], vec![7, 7])]);
    }

    #[test]
    fn torn_tail_is_dropped_everywhere() {
        let mut wal = encode_record(&batch1());
        wal.extend(encode_record(&[Op::Put(b"gamma".to_vec(), b"2".to_vec())]));
        let full = replay(&wal).len();
        assert_eq!(full, 2);
        // Chop at every position inside the second record: first record
        // must always survive, second must always be dropped.
        let first_len = encode_record(&batch1()).len();
        for cut in first_len..wal.len() {
            let out = replay(&wal[..cut]);
            assert_eq!(out.len(), 1, "cut at {cut}");
            assert_eq!(out[0], batch1());
        }
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let mut wal = encode_record(&batch1());
        let n = wal.len();
        wal[n - 1] ^= 0xFF; // flip last body byte
        assert!(replay(&wal).is_empty());
    }

    #[test]
    fn empty_and_garbage_input() {
        assert!(replay(&[]).is_empty());
        assert!(replay(&[1, 2, 3]).is_empty());
    }

    #[test]
    fn empty_batch_round_trips() {
        let rec = encode_record(&[]);
        assert_eq!(replay(&rec), vec![Vec::<Op>::new()]);
    }
}
