#![warn(missing_docs)]

//! # sorrento-kvdb — embedded ordered key-value store
//!
//! Sorrento's namespace server stores the directory tree "in a database
//! using Berkeley DB \[33\]", employing "a combination of write-ahead
//! logging and checkpointing to allow a namespace server to recover from
//! disk failures" (§3.1). Berkeley DB is not part of this reproduction's
//! dependency budget, so this crate is the substitute: an embedded ordered
//! map with
//!
//! * atomic multi-operation batches ([`Batch`]) recorded in a CRC-guarded
//!   write-ahead log,
//! * periodic checkpointing (full snapshot + WAL truncation), and
//! * crash recovery that loads the last checkpoint, replays the WAL, and
//!   discards a torn tail record.
//!
//! Storage is abstracted behind [`Backend`] so the store runs both on real
//! files ([`FileBackend`]) and fully in memory ([`MemBackend`]); the
//! in-memory backend supports snapshotting mid-write, which is how the
//! tests inject crashes at every possible torn-log position.
//!
//! ```
//! use sorrento_kvdb::{Db, MemBackend, Batch};
//!
//! let mut db = Db::open(MemBackend::new(), Default::default()).unwrap();
//! db.put(b"/vol/a", b"file-entry-a").unwrap();
//! let mut batch = Batch::new();
//! batch.put(b"/vol/b", b"file-entry-b");
//! batch.delete(b"/vol/a");
//! db.apply(batch).unwrap();
//! assert!(db.get(b"/vol/a").is_none());
//! assert_eq!(db.get(b"/vol/b").unwrap(), b"file-entry-b");
//! ```

mod backend;
mod crc;
mod db;
mod shared;
mod wal;

pub use backend::{Backend, FileBackend, MemBackend};
pub use crc::{crc32, Crc32};
pub use db::{assemble_shipped, Batch, Db, DbConfig, Op, Shipment};
pub use shared::SharedDb;
