#![warn(missing_docs)]

//! # sorrento-trace — I/O trace format, recording and replay
//!
//! The paper evaluates Sorrento largely through *application trace
//! replay* (§4): real applications (a search-engine crawler, NCBI-Blast
//! protein matching, NAS BTIO) were traced once — "the traces being
//! collected all have accurate timing information for the starting and
//! ending time of each I/O request" — then replayed against Sorrento,
//! PVFS and NFS.
//!
//! This crate is the equivalent substrate: a serializable operation
//! format ([`TraceOp`] / [`Trace`]), JSONL persistence, and the metadata
//! needed for the two replay disciplines used in §4:
//!
//! * **as-fast-as-possible** — ops issue back-to-back (§4.2.2: "they
//!   issue requests sequentially as fast as they can");
//! * **timing-faithful gaps** — inter-request gaps from the trace are
//!   reproduced as think time (§4.4's crawler replayers "emulate the
//!   effect of Internet latency ... by blocking themselves for the same
//!   amount of time", §4.5's query-boundary gaps).
//!
//! Payload bytes are not recorded — only lengths — matching what I/O
//! traces contain in practice.

use std::io::{self, BufRead, Write};

use sorrento_json::Json;

/// One traced operation. Offsets/lengths in bytes, times in nanoseconds
/// relative to trace start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Create (and open for writing).
    Create {
        /// Pathname.
        path: String,
    },
    /// Open an existing file.
    Open {
        /// Pathname.
        path: String,
        /// Writable open.
        write: bool,
    },
    /// Read a byte range of the open file.
    Read {
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: u64,
    },
    /// Write a byte range of the open file.
    Write {
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: u64,
    },
    /// Append to the open file.
    Append {
        /// Byte count.
        len: u64,
    },
    /// Commit without closing.
    Sync,
    /// Close (commits pending changes).
    Close,
    /// Remove a file.
    Unlink {
        /// Pathname.
        path: String,
    },
    /// Create a directory.
    Mkdir {
        /// Pathname.
        path: String,
    },
    /// A gap between requests (think time / emulated external latency).
    Gap {
        /// Nanoseconds of idleness.
        ns: u64,
    },
    /// Marker: a logical query/work-unit boundary (§4.5's traces "contain
    /// boundary marks of individual queries").
    QueryBoundary,
}

/// One trace record: when the op started and how long it took when it
/// was captured (both optional for synthetic traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Start time, ns from trace start.
    pub at_ns: Option<u64>,
    /// Observed duration in ns.
    pub dur_ns: Option<u64>,
    /// The operation.
    pub op: TraceOp,
}

impl TraceRecord {
    /// A record with no timing information.
    pub fn untimed(op: TraceOp) -> TraceRecord {
        TraceRecord {
            at_ns: None,
            dur_ns: None,
            op,
        }
    }

    /// Encode as a flat JSON object: optional `at_ns`/`dur_ns`, then the
    /// op tag under `"op"` (snake_case) with its fields inlined — the
    /// same wire layout the original serde derive produced.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        if let Some(at) = self.at_ns {
            j.set("at_ns", at);
        }
        if let Some(d) = self.dur_ns {
            j.set("dur_ns", d);
        }
        match &self.op {
            TraceOp::Create { path } => {
                j.set("op", "create");
                j.set("path", path.as_str());
            }
            TraceOp::Open { path, write } => {
                j.set("op", "open");
                j.set("path", path.as_str());
                j.set("write", *write);
            }
            TraceOp::Read { offset, len } => {
                j.set("op", "read");
                j.set("offset", *offset);
                j.set("len", *len);
            }
            TraceOp::Write { offset, len } => {
                j.set("op", "write");
                j.set("offset", *offset);
                j.set("len", *len);
            }
            TraceOp::Append { len } => {
                j.set("op", "append");
                j.set("len", *len);
            }
            TraceOp::Sync => j.set("op", "sync"),
            TraceOp::Close => j.set("op", "close"),
            TraceOp::Unlink { path } => {
                j.set("op", "unlink");
                j.set("path", path.as_str());
            }
            TraceOp::Mkdir { path } => {
                j.set("op", "mkdir");
                j.set("path", path.as_str());
            }
            TraceOp::Gap { ns } => {
                j.set("op", "gap");
                j.set("ns", *ns);
            }
            TraceOp::QueryBoundary => j.set("op", "query_boundary"),
        }
        j
    }

    /// Decode the layout produced by [`TraceRecord::to_json`].
    pub fn from_json(j: &Json) -> Option<TraceRecord> {
        let at_ns = match j.get("at_ns") {
            None => None,
            Some(v) => Some(v.as_u64()?),
        };
        let dur_ns = match j.get("dur_ns") {
            None => None,
            Some(v) => Some(v.as_u64()?),
        };
        let path = || Some(j.get("path")?.as_str()?.to_owned());
        let u64f = |k: &str| j.get(k)?.as_u64();
        let op = match j.get("op")?.as_str()? {
            "create" => TraceOp::Create { path: path()? },
            "open" => TraceOp::Open { path: path()?, write: j.get("write")?.as_bool()? },
            "read" => TraceOp::Read { offset: u64f("offset")?, len: u64f("len")? },
            "write" => TraceOp::Write { offset: u64f("offset")?, len: u64f("len")? },
            "append" => TraceOp::Append { len: u64f("len")? },
            "sync" => TraceOp::Sync,
            "close" => TraceOp::Close,
            "unlink" => TraceOp::Unlink { path: path()? },
            "mkdir" => TraceOp::Mkdir { path: path()? },
            "gap" => TraceOp::Gap { ns: u64f("ns")? },
            "query_boundary" => TraceOp::QueryBoundary,
            _ => return None,
        };
        Some(TraceRecord { at_ns, dur_ns, op })
    }
}

/// A full trace for one client process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The records, in issue order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append an untimed op.
    pub fn push(&mut self, op: TraceOp) -> &mut Trace {
        self.records.push(TraceRecord::untimed(op));
        self
    }

    /// Append a timed op.
    pub fn push_at(&mut self, at_ns: u64, dur_ns: Option<u64>, op: TraceOp) -> &mut Trace {
        self.records.push(TraceRecord { at_ns: Some(at_ns), dur_ns, op });
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes read by the trace.
    pub fn bytes_read(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r.op {
                TraceOp::Read { len, .. } => len,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes written by the trace.
    pub fn bytes_written(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r.op {
                TraceOp::Write { len, .. } | TraceOp::Append { len } => len,
                _ => 0,
            })
            .sum()
    }

    /// Serialize as JSON Lines.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for rec in &self.records {
            w.write_all(rec.to_json().encode().as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Parse from JSON Lines, skipping blank lines.
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Trace> {
        let mut trace = Trace::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec = Json::parse(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
                .and_then(|j| {
                    TraceRecord::from_json(&j).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad trace record")
                    })
                })?;
            trace.records.push(rec);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(TraceOp::Create { path: "/a".into() })
            .push(TraceOp::Write { offset: 0, len: 4096 })
            .push(TraceOp::Gap { ns: 1_000_000 })
            .push(TraceOp::Append { len: 100 })
            .push(TraceOp::Sync)
            .push(TraceOp::QueryBoundary)
            .push(TraceOp::Read { offset: 10, len: 20 })
            .push(TraceOp::Close)
            .push(TraceOp::Unlink { path: "/a".into() });
        t
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn timed_records_round_trip() {
        let mut t = Trace::new();
        t.push_at(0, Some(5_000), TraceOp::Create { path: "/x".into() });
        t.push_at(10_000, None, TraceOp::Close);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.records[0].at_ns, Some(0));
        assert_eq!(back.records[0].dur_ns, Some(5_000));
    }

    #[test]
    fn byte_accounting() {
        let t = sample();
        assert_eq!(t.bytes_written(), 4196);
        assert_eq!(t.bytes_read(), 20);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let src = b"\n{\"op\":\"close\"}\n\n";
        let t = Trace::read_jsonl(&src[..]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.records[0].op, TraceOp::Close);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let src = b"{not json}\n";
        assert!(Trace::read_jsonl(&src[..]).is_err());
    }
}
