//! **bench-ec** — erasure coding vs replication-3, head to head.
//!
//! Two seeded simulator clusters store the same logical dataset, one
//! with replication-3 (the paper's durable mode) and one with EC(4,2)
//! (k = 4 data + m = 2 parity shards, index replicated ×2). Both then
//! lose two data-holding providers. Measured per mode:
//!
//! * **storage overhead** — physical bytes on provider disks over
//!   logical file bytes, after propagation settles;
//! * **read latency** — per-op `read` p50/p95 healthy, and again with
//!   the two providers dead (EC reads reconstruct inline; replicated
//!   reads fail over to surviving copies);
//! * **repair traffic** — bytes installed onto live disks to restore
//!   redundancy, plus the bytes fetched to feed the rebuild
//!   (reconstruction reads k survivors; re-replication reads one copy).
//!
//! Output: a summary table on stdout and `results/BENCH_ec.json`
//! (override with `--out PATH`). Everything is deterministic from the
//! fixed seeds.

use std::collections::BTreeSet;

use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::types::{FileOptions, SegId};
use sorrento_sim::{Dur, NodeId};

const PROVIDERS: usize = 10;
const FILES: usize = 4;
const FILE_BYTES: usize = 1 << 20; // 1 MiB per file
const KILLS: usize = 2;

fn patterned(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(29) ^ seed).collect()
}

/// Physical bytes stored across providers, skipping `dead` ones.
fn stored_bytes(c: &Cluster, dead: &[NodeId]) -> u64 {
    c.providers()
        .iter()
        .filter(|p| !dead.contains(p))
        .filter_map(|&p| c.provider_ref(p))
        .map(|prov| {
            prov.store
                .list_segments()
                .iter()
                .map(|&(seg, _)| prov.store.stored_bytes(seg))
                .sum::<u64>()
        })
        .sum()
}

/// Live owners per segment (ground truth minus `dead`).
fn live_owners(c: &Cluster, dead: &[NodeId]) -> Vec<(SegId, usize)> {
    c.segment_ownership()
        .into_iter()
        .map(|(seg, owners)| {
            (seg, owners.iter().filter(|(p, _)| !dead.contains(p)).count())
        })
        .collect()
}

fn percentile(mut xs: Vec<f64>, p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let i = ((xs.len() - 1) as f64 * p).round() as usize;
    xs[i]
}

/// `read` op latencies (ms, virtual time) of one client.
fn read_latencies_ms(c: &Cluster, id: NodeId) -> Vec<f64> {
    c.client_stats(id)
        .unwrap()
        .latencies
        .iter()
        .filter(|(k, _)| *k == "read")
        .map(|(_, d)| d.as_secs_f64() * 1e3)
        .collect()
}

struct ModeResult {
    label: &'static str,
    overhead: f64,
    healthy_p50_ms: f64,
    healthy_p95_ms: f64,
    degraded_p50_ms: f64,
    degraded_p95_ms: f64,
    repair_installed_bytes: u64,
    repair_fetched_bytes: u64,
    heal_secs: f64,
}

/// Run one cluster through populate → settle → healthy reads → kill 2 →
/// degraded reads → heal → measure.
fn run_mode(label: &'static str, options: FileOptions, seed: u64) -> ModeResult {
    let mut c: Cluster = ClusterBuilder::new()
        .providers(PROVIDERS)
        .replication(options.replication)
        .seed(seed)
        .costs(CostModel::fast_test())
        .build();
    let logical = (FILES * FILE_BYTES) as u64;
    let paths: Vec<String> = (0..FILES).map(|i| format!("/f{i}")).collect();

    let mut script = Vec::new();
    for (i, p) in paths.iter().enumerate() {
        script.push(ClientOp::CreateWith { path: p.clone(), options });
        script.push(ClientOp::write_bytes(0, patterned(FILE_BYTES, i as u8)));
        script.push(ClientOp::Close);
    }
    let writer = c.add_client(ScriptedWorkload::new(script));
    loop {
        c.run_for(Dur::secs(5));
        if c.client_stats(writer).unwrap().finished_at.is_some() {
            break;
        }
        assert!(c.now().as_secs_f64() < 600.0, "{label}: populate stalled");
    }
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0, "{label}: populate failed");

    // Let lazy propagation finish: every segment at its target degree
    // (data degree for replication; index ×2 + single shards for EC).
    let is_ec = options.ec.is_some();
    let want = options.replication as usize;
    for _ in 0..120 {
        c.run_for(Dur::secs(5));
        let settled = if is_ec {
            // index segments (replicated) at 2; shards exist singly
            c.segment_ownership().values().all(|o| !o.is_empty())
                && c.segment_ownership().values().filter(|o| o.len() >= 2).count() >= FILES
        } else {
            c.segment_ownership().values().all(|o| o.len() >= want)
        };
        if settled {
            break;
        }
    }
    let overhead = stored_bytes(&c, &[]) as f64 / logical as f64;

    // Healthy reads.
    let mut rs = Vec::new();
    for p in &paths {
        rs.push(ClientOp::Open { path: p.clone(), write: false });
        rs.push(ClientOp::Read { offset: 0, len: FILE_BYTES as u64 });
        rs.push(ClientOp::Close);
    }
    let healthy = c.add_client(ScriptedWorkload::new(rs.clone()));
    c.run_for(Dur::secs(60));
    let hstats = c.client_stats(healthy).unwrap();
    assert_eq!(hstats.failed_ops, 0, "{label}: healthy reads failed: {:?}", hstats.last_error);
    let hlat = read_latencies_ms(&c, healthy);

    // Kill two providers that hold data but (for EC) no index replica,
    // so loss lands on shards/replicas rather than the file's map.
    let ownership = c.segment_ownership();
    let multi_owners: BTreeSet<NodeId> = ownership
        .values()
        .filter(|o| o.len() > 1)
        .flat_map(|o| o.iter().map(|&(p, _)| p))
        .collect();
    let mut victims: Vec<NodeId> = if is_ec {
        ownership
            .values()
            .filter(|o| o.len() == 1)
            .map(|o| o[0].0)
            .filter(|p| !multi_owners.contains(p))
            .collect()
    } else {
        ownership.values().flat_map(|o| o.iter().map(|&(p, _)| p)).collect()
    };
    victims.sort();
    victims.dedup();
    victims.truncate(KILLS);
    assert_eq!(victims.len(), KILLS, "{label}: not enough data holders to kill");
    for &v in &victims {
        c.crash_provider_at(c.now(), v);
    }
    let live_before_heal = stored_bytes(&c, &victims);
    let killed_at = c.now().as_secs_f64();

    // Degraded / failover reads while the loss is outstanding.
    let degraded = c.add_client(ScriptedWorkload::new(rs.clone()));
    c.run_for(Dur::secs(60));
    let dstats = c.client_stats(degraded).unwrap();
    assert_eq!(dstats.failed_ops, 0, "{label}: degraded reads failed: {:?}", dstats.last_error);
    let dlat = read_latencies_ms(&c, degraded);

    // Heal: every segment back to full degree on live providers.
    let mut heal_secs = f64::NAN;
    for _ in 0..240 {
        c.run_for(Dur::secs(5));
        let healed = if is_ec {
            live_owners(&c, &victims).iter().all(|&(_, n)| n >= 1)
        } else {
            live_owners(&c, &victims).iter().all(|&(_, n)| n >= want)
        };
        if healed {
            heal_secs = c.now().as_secs_f64() - killed_at;
            break;
        }
    }
    assert!(!heal_secs.is_nan(), "{label}: repair never converged");
    let repair_installed_bytes = stored_bytes(&c, &victims).saturating_sub(live_before_heal);
    // Feeding the rebuild: EC reconstruction reads k full shards per
    // repaired file; re-replication reads each lost replica once.
    let repair_fetched_bytes = if is_ec {
        let k = options.ec.unwrap().k as u64;
        let shard = (FILE_BYTES as u64).div_ceil(k);
        // one reconstruct per file that lost ≥1 shard; count via installs
        let files_repaired = (repair_installed_bytes / shard.max(1)).min(FILES as u64);
        files_repaired.min(FILES as u64) * k * shard
    } else {
        repair_installed_bytes
    };

    ModeResult {
        label,
        overhead,
        healthy_p50_ms: percentile(hlat.clone(), 0.5),
        healthy_p95_ms: percentile(hlat, 0.95),
        degraded_p50_ms: percentile(dlat.clone(), 0.5),
        degraded_p95_ms: percentile(dlat, 0.95),
        repair_installed_bytes,
        repair_fetched_bytes,
        heal_secs,
    }
}

fn json_of(r: &ModeResult) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"storage_overhead\": {:.4},\n",
            "      \"read_p50_ms\": {:.3},\n",
            "      \"read_p95_ms\": {:.3},\n",
            "      \"degraded_read_p50_ms\": {:.3},\n",
            "      \"degraded_read_p95_ms\": {:.3},\n",
            "      \"repair_installed_bytes\": {},\n",
            "      \"repair_fetched_bytes\": {},\n",
            "      \"heal_seconds\": {:.1}\n",
            "    }}"
        ),
        r.overhead,
        r.healthy_p50_ms,
        r.healthy_p95_ms,
        r.degraded_p50_ms,
        r.degraded_p95_ms,
        r.repair_installed_bytes,
        r.repair_fetched_bytes,
        r.heal_secs,
    )
}

fn main() {
    let mut out_path = String::from("results/BENCH_ec.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out_path = args.next().expect("--out needs a path");
        }
    }

    let repl = run_mode(
        "replication-3",
        FileOptions { replication: 3, ..FileOptions::default() },
        7301,
    );
    let ec = run_mode(
        "EC(4,2)",
        FileOptions { replication: 2, ..FileOptions::erasure_coded(4, 2, 64 << 20) },
        7302,
    );

    println!(
        "| {:<14} | {:>9} | {:>12} | {:>14} | {:>14} | {:>9} |",
        "mode", "overhead", "read p50 ms", "degraded p50", "repair bytes", "heal s"
    );
    for r in [&repl, &ec] {
        println!(
            "| {:<14} | {:>8.2}x | {:>12.3} | {:>14.3} | {:>14} | {:>9.1} |",
            r.label,
            r.overhead,
            r.healthy_p50_ms,
            r.degraded_p50_ms,
            r.repair_installed_bytes,
            r.heal_secs
        );
    }
    assert!(
        ec.overhead <= 1.6,
        "EC(4,2) storage overhead {:.3} exceeds the 1.6x budget",
        ec.overhead
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"erasure coding vs replication-3\",\n",
            "  \"setup\": {{\n",
            "    \"providers\": {}, \"files\": {}, \"file_bytes\": {},\n",
            "    \"providers_killed\": {}, \"costs\": \"fast_test\", \"seeds\": [7301, 7302]\n",
            "  }},\n",
            "  \"summary\": {{\n",
            "    \"ec_overhead_vs_repl3\": \"{:.2}x vs {:.2}x\",\n",
            "    \"degraded_read_slowdown_ec\": {:.2},\n",
            "    \"repair_installed_ratio_repl3_over_ec\": {:.2}\n",
            "  }},\n",
            "  \"replication3\": \n{},\n",
            "  \"ec_4_2\": \n{}\n",
            "}}\n"
        ),
        PROVIDERS,
        FILES,
        FILE_BYTES,
        KILLS,
        ec.overhead,
        repl.overhead,
        ec.degraded_p50_ms / ec.healthy_p50_ms,
        repl.repair_installed_bytes as f64 / ec.repair_installed_bytes.max(1) as f64,
        json_of(&repl),
        json_of(&ec),
    );
    std::fs::write(&out_path, &json).expect("write results json");
    println!("wrote {out_path}");
}
