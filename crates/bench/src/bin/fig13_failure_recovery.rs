//! **Figure 13** — handling node failures and additions.
//!
//! 10 providers, 200 × 512 MB files at replication 3 (scaled down by
//! default), a constant workload of 3 bulkread + 2 bulkwrite clients at
//! ~50% capacity. One provider is killed at t = 30 s; a fresh provider
//! joins at t = 45 s. The output is the 3-second-bucket aggregate
//! transfer rate time line plus when full replication was restored.
//!
//! Paper's shape: a dip right after the failure (requests to the dead
//! node time out), recovery to ≈ 94% of the initial rate, a further dip
//! to ≈ 85% while re-replication traffic runs, and all lost replicas
//! eventually restored (~20 min at full scale).

use sorrento::cluster::{Cluster, ClusterBuilder};
use sorrento_bench::{full_scale, mbps, print_series, ByteSnapshot, TelemetryExport};
use sorrento_sim::{Dur, SimTime};
use sorrento_workloads::bulk::{bulk_options, populate_script, BulkIo, BulkMode};

fn main() {
    let (files, file_size) = if full_scale() {
        (200, 512u64 << 20)
    } else {
        (24, 64u64 << 20)
    };
    let mut cluster: Cluster = ClusterBuilder::new()
        .providers(10)
        .replication(3)
        .seed(130)
        .capacity(if full_scale() { 72_000_000_000 } else { 4_000_000_000 })
        .build();
    // Populate through 4 parallel loader clients.
    let mut opts = bulk_options();
    opts.replication = 3;
    let loaders: Vec<_> = (0..4)
        .map(|l| {
            let script = populate_script(&format!("/l{l}-f"), files / 4, file_size, opts);
            cluster.add_client(sorrento::cluster::ScriptedWorkload::new(script))
        })
        .collect();
    loop {
        cluster.run_for(Dur::secs(2));
        if loaders
            .iter()
            .all(|&id| cluster.client_stats(id).unwrap().finished_at.is_some())
        {
            break;
        }
        assert!(cluster.now().as_secs_f64() < 40_000.0, "populate stalled");
    }
    for &id in &loaders {
        assert_eq!(cluster.client_stats(id).unwrap().failed_ops, 0);
    }
    // Let replication-degree repair finish before the measurement.
    let mut settle = 0;
    loop {
        cluster.run_for(Dur::secs(10));
        settle += 1;
        let under = cluster
            .segment_ownership()
            .values()
            .filter(|owners| owners.len() < 3)
            .count();
        if under == 0 || settle > 600 {
            break;
        }
    }
    println!(
        "# populated {} files x {} MB, replication settled at t={:.0}s",
        files,
        file_size >> 20,
        cluster.now().as_secs_f64()
    );

    // Constant workload: 3 readers + 2 writers over disjoint file sets.
    let mut clients = Vec::new();
    for i in 0..3 {
        let w = BulkIo::new(format!("/l{i}-f"), files / 4, file_size, BulkMode::Read, None);
        clients.push(cluster.add_client_with_options(w, opts));
    }
    for i in 0..2 {
        let w = BulkIo::new(
            format!("/l{}-f", i + 1),
            files / 4,
            file_size,
            BulkMode::Write,
            None,
        );
        clients.push(cluster.add_client_with_options(w, opts));
    }
    // Timeline starts now; fail one provider at +30 s, add one at +45 s.
    let t0 = cluster.now();
    let victim = cluster.providers()[3];
    cluster.crash_provider_at(t0 + Dur::secs(30), victim);
    cluster.add_provider_at(
        t0 + Dur::secs(45),
        if full_scale() { 72_000_000_000 } else { 4_000_000_000 },
    );

    // Sample aggregate transfer rate every 3 s for 180 s.
    let mut series: Vec<(SimTime, f64)> = Vec::new();
    let mut prev: Vec<ByteSnapshot> = clients
        .iter()
        .map(|&id| ByteSnapshot::of(cluster.client_stats(id).unwrap()))
        .collect();
    for _ in 0..60 {
        cluster.run_for(Dur::secs(3));
        let now: Vec<ByteSnapshot> = clients
            .iter()
            .map(|&id| ByteSnapshot::of(cluster.client_stats(id).unwrap()))
            .collect();
        let bytes: u64 = now
            .iter()
            .zip(&prev)
            .map(|(n, p)| {
                let d = n.since(*p);
                d.read + d.written
            })
            .sum();
        series.push((
            SimTime::from_nanos(cluster.now().since(t0).as_nanos()),
            mbps(bytes, 3.0),
        ));
        prev = now;
    }
    print_series(
        "Figure 13: aggregate transfer rate across failure (t=30s) and join (t=45s)",
        "MB/s",
        &series,
    );

    // Keep running until every segment is back at degree 3 (excluding
    // the dead provider).
    let mut restored_at = None;
    for _ in 0..600 {
        let under = cluster
            .segment_ownership()
            .values()
            .filter(|owners| owners.len() < 3)
            .count();
        if under == 0 {
            restored_at = Some(cluster.now());
            break;
        }
        cluster.run_for(Dur::secs(10));
    }
    match restored_at {
        Some(t) => println!(
            "# all replicas restored {:.0}s after the failure",
            t.since(t0 + Dur::secs(30)).as_secs_f64()
        ),
        None => println!("# WARNING: replicas not fully restored within the horizon"),
    }
    let mut telemetry = TelemetryExport::new("fig13");
    telemetry.snapshot("Sorrento-(10,3)", cluster.metrics());
    telemetry.write();
}
