//! **Figure 14** — storage-usage balance of the crawler workload under
//! three placement/migration schemes.
//!
//! 50 crawlers (5 per storage node) replay Ask Jeeves-style crawls:
//! heavy-tailed pages-per-domain, >10× crawler speed discrepancy, one
//! file per domain, no replication. Compared:
//!
//! * `Sorrento-random`    — uniform random placement, no migration;
//! * `Sorrento-space`     — space-based placement (α = 0), no migration;
//! * `Sorrento-migration` — space-based placement + online migration.
//!
//! Paper's numbers (lowest%, highest%, unevenness ratio): random 7.1 /
//! 35.3 / 4.97; space 9.1 / 26.2 / 2.88; migration 10.2 / 18.5 / 1.81.

use sorrento::cluster::{Cluster, ClusterBuilder};
use sorrento::costs::CostModel;
use sorrento::types::{FileOptions, PlacementPolicy};
use sorrento_bench::{f2, full_scale, print_table, TelemetryExport};
use sorrento_sim::Dur;
use sorrento_workloads::crawler::{Crawler, CrawlerConfig};

const PROVIDERS: usize = 10;
const CRAWLERS_PER_NODE: usize = 5;

struct Scheme {
    name: &'static str,
    policy: PlacementPolicy,
    migration: bool,
}

fn crawl_cfg(c: usize) -> CrawlerConfig {
    let div = if full_scale() { 1 } else { 4 };
    CrawlerConfig {
        domains: 8,
        min_pages: 50 / div as u64 + 1,
        max_pages: 400_000 / div as u64,
        page_bytes: 10 * 1024,
        pages_per_write: 256,
        skew: 1.6,
        // >10× speed discrepancy across crawlers (§4.4).
        fetch_think: Dur::millis(40 + 60 * (c as u64 % 12)),
    }
}

fn run_scheme(scheme: &Scheme, telemetry: &mut TelemetryExport) -> (f64, f64, f64) {
    let mut costs = CostModel::default();
    if !scheme.migration {
        // Disable the migration daemon (decisions would otherwise run
        // once a minute).
        costs.migration_interval = Dur::secs(100_000_000);
    }
    // Sized so the run lands in the paper's usage band (roughly 7–35%
    // of each disk), where the storage factor discriminates and the
    // migration trigger can fire.
    let capacity = if full_scale() {
        12_000_000_000
    } else {
        2_200_000_000
    };
    let mut cluster: Cluster = ClusterBuilder::new()
        .providers(PROVIDERS)
        .replication(1)
        .seed(140)
        .costs(costs)
        .capacity(capacity)
        .build();
    let options = FileOptions {
        replication: 1, // "The page files are not replicated."
        alpha: 0.0,     // space-based (§4.4 chooses α = 0)
        placement: scheme.policy,
        ..FileOptions::default()
    };
    let mut ids = Vec::new();
    for i in 0..PROVIDERS * CRAWLERS_PER_NODE {
        // Crawlers run on the storage nodes themselves (5 per node).
        let w = Crawler::new(format!("c{i}"), crawl_cfg(i));
        let node = i % PROVIDERS;
        let cfg = sorrento_sim::NodeConfig::default().on_machine(node as u32);
        let _ = cfg; // co-location handled by add_client_on_provider
        ids.push((
            cluster.add_client_on_provider_with_options(w, node, options),
            (),
        ));
    }
    // Run until all crawlers finish (12 h in the paper; the scaled run
    // completes much sooner).
    loop {
        cluster.run_for(Dur::secs(60));
        let done = ids
            .iter()
            .filter(|(id, _)| cluster.client_stats(*id).unwrap().finished_at.is_some())
            .count();
        if done == ids.len() {
            break;
        }
        assert!(
            cluster.now().as_secs_f64() < 16.0 * 3600.0,
            "crawl did not finish"
        );
    }
    // Let in-flight migrations settle (the paper's run keeps migrating
    // through its 12-hour window; give the daemon a comparable
    // rebalancing tail relative to the compressed crawl).
    cluster.run_for(Dur::minutes(45));
    let usage = cluster.provider_disk_usage();
    let fracs: Vec<f64> = usage
        .iter()
        .map(|&(_, used, cap)| used as f64 / cap as f64 * 100.0)
        .collect();
    let lo = fracs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = fracs.iter().cloned().fold(0.0, f64::max);
    eprintln!(
        "# {}: migrations={}/{} usage={:?}",
        scheme.name,
        cluster.metrics().counter("sorrento.migrations_done"),
        cluster.metrics().counter("sorrento.migrations_started"),
        fracs.iter().map(|f| (f * 10.0).round() / 10.0).collect::<Vec<_>>()
    );
    telemetry.snapshot(scheme.name, cluster.metrics());
    (lo, hi, hi / lo.max(1e-9))
}

fn main() {
    let schemes = [
        Scheme {
            name: "Sorrento-random",
            policy: PlacementPolicy::Random,
            migration: false,
        },
        Scheme {
            name: "Sorrento-space",
            policy: PlacementPolicy::LoadAware,
            migration: false,
        },
        Scheme {
            name: "Sorrento-migration",
            policy: PlacementPolicy::LoadAware,
            migration: true,
        },
    ];
    let mut telemetry = TelemetryExport::new("fig14");
    let mut rows = Vec::new();
    for s in &schemes {
        let (lo, hi, ratio) = run_scheme(s, &mut telemetry);
        rows.push(vec![s.name.to_string(), f2(lo), f2(hi), f2(ratio)]);
    }
    print_table(
        "Figure 14: crawler storage usage (lowest %, highest %, unevenness)",
        &["scheme", "lowest_%", "highest_%", "unevenness"],
        &rows,
    );
    telemetry.write();
}
