//! **Figure 15** — locality-driven data placement and migration.
//!
//! The PSM dataset (24 partitions) is imported onto an 8-node volume
//! with no knowledge of which service process will read which partition;
//! 8 PSM service processes run co-located with the 8 providers, each
//! statically assigned 3 partitions. Under the locality-driven policy
//! (threshold > 50% of recent traffic from one machine) the partitions
//! migrate to their consumers without service interruption.
//!
//! Paper's shape: per-query I/O time starts ≈ 62 ms (only 4 partitions
//! local), rises ≈ 75 ms while migration traffic competes, and settles
//! ≈ 46 ms once all partitions are co-located (−26%).

use sorrento::cluster::{Cluster, ClusterBuilder};
use sorrento::types::{FileOptions, PlacementPolicy};
use sorrento_bench::{full_scale, print_series, TelemetryExport};
use sorrento_sim::{Dur, SimTime};
use sorrento_workloads::psm::{import_script, partition_path, PsmConfig, PsmService};

fn main() {
    let div = if full_scale() { 1 } else { 16 };
    let cfg = PsmConfig {
        partitions: 24,
        per_process: 3,
        min_partition: (1u64 << 30) / div,
        max_partition: (3u64 << 29) / div,
        scan_per_query: 256 << 10,
        chunk: 128 << 10,
        query_gap: Dur::millis(400),
        queries: None,
    };
    let mut cluster: Cluster = ClusterBuilder::new()
        .providers(8)
        .replication(1)
        .seed(150)
        .build();
    // Import without locality knowledge (loader is its own machine).
    let import = import_script(&cfg, Some(0.6));
    let loader = cluster.add_client(sorrento::cluster::ScriptedWorkload::new(import));
    loop {
        cluster.run_for(Dur::secs(5));
        if cluster.client_stats(loader).unwrap().finished_at.is_some() {
            break;
        }
        assert!(cluster.now().as_secs_f64() < 40_000.0, "import stalled");
    }
    assert_eq!(cluster.client_stats(loader).unwrap().failed_ops, 0);
    println!(
        "# imported {} partitions by t={:.0}s",
        cfg.partitions,
        cluster.now().as_secs_f64()
    );

    // 8 co-located service processes, 3 partitions each.
    let options = FileOptions {
        placement: PlacementPolicy::LocalityDriven { threshold: 0.6 },
        ..FileOptions::default()
    };
    let mut services = Vec::new();
    for p in 0..8usize {
        let parts: Vec<usize> = (0..3).map(|k| p * 3 + k).collect();
        let svc = PsmService::new(cfg.clone(), parts);
        services.push(cluster.add_client_on_provider_with_options(svc, p, options));
    }
    let _t0 = cluster.now();
    // Sample the mean per-query I/O time in 30 s buckets for ~35 min
    // (the paper's migration completes around t = 1410 s).
    let horizon = if full_scale() { 2100 } else { 1500 };
    let mut series: Vec<(SimTime, f64)> = Vec::new();
    let mut consumed = vec![0usize; services.len()];
    let mut elapsed = 0u64;
    while elapsed < horizon {
        cluster.run_for(Dur::secs(30));
        elapsed += 30;
        let mut total = Dur::ZERO;
        let mut count = 0u32;
        for (k, &id) in services.iter().enumerate() {
            let svc = cluster
                .sim
                .node_ref::<sorrento::client::SorrentoClient>(id)
                .expect("service exists");
            let _ = svc;
            // Pull fresh query_io entries out of the workload.
            let q = query_io_of(&cluster, id);
            for &(_, io) in &q[consumed[k]..] {
                total += io;
                count += 1;
            }
            consumed[k] = q.len();
        }
        if count > 0 {
            series.push((
                SimTime::from_nanos(elapsed * 1_000_000_000),
                total.as_millis_f64() / count as f64,
            ));
        }
    }
    print_series(
        "Figure 15: PSM per-query I/O time under locality-driven migration",
        "ms/query",
        &series,
    );
    println!(
        "# migrations completed: {}",
        cluster.metrics().counter("sorrento.migrations_done")
    );
    // How many partitions ended up co-located with their consumers?
    let mut local = 0;
    for p in 0..8usize {
        for k in 0..3 {
            let _ = partition_path(p * 3 + k);
        }
        local += 3; // reported via disk usage below
    }
    let _ = local;
    for (i, (node, used, _)) in cluster.provider_disk_usage().iter().enumerate() {
        println!("# provider {i} ({node}): {} MB", used >> 20);
    }
    let mut telemetry = TelemetryExport::new("fig15");
    telemetry.snapshot("Sorrento-(8,1)-locality", cluster.metrics());
    telemetry.write();
}

/// Extract a PSM service's per-query I/O series from its client node.
fn query_io_of(cluster: &Cluster, id: sorrento_sim::NodeId) -> Vec<(SimTime, Dur)> {
    cluster
        .sim
        .node_ref::<sorrento::client::SorrentoClient>(id)
        .and_then(|c| c.workload_ref::<PsmService>())
        .map(|s| s.query_io.clone())
        .unwrap_or_default()
}
