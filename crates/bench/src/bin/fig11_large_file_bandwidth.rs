//! **Figure 11** — large-file aggregate transfer rates vs client count.
//!
//! `bulkread`/`bulkwrite`: 4 MB requests at random 4 KB-aligned offsets
//! over per-client sets of 512 MB files; each client moves 256 MB per
//! run. Paper's shape: NFS flat ≈ 8 MB/s; reads — Sorrento ≈ PVFS,
//! scaling with clients until the storage-node NICs saturate
//! (8 × 12.5 MB/s); writes — PVFS ≈ 2× Sorrento-(8,2), because Sorrento
//! commits every write to two replicas; lazy propagation beats eager at
//! low client counts and matches its peak.

use sorrento::cluster::ClusterBuilder;
use sorrento::types::FileOptions;
use sorrento_baselines::nfs::{NfsCluster, NfsCosts};
use sorrento_baselines::pvfs::{PvfsCluster, PvfsCosts};
use sorrento_bench::{f1, full_scale, mbps, print_table, AnyCluster, TelemetryExport};
use sorrento_sim::Dur;
use sorrento_workloads::bulk::{bulk_options, populate_script, BulkIo, BulkMode};

const CLIENT_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const CAP: Dur = Dur::nanos(4_000_000_000_000);

fn file_size() -> u64 {
    if full_scale() {
        512 << 20
    } else {
        128 << 20
    }
}

fn quota() -> u64 {
    if full_scale() {
        256 << 20
    } else {
        64 << 20
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Sys {
    Nfs,
    Pvfs8,
    SorrentoLazy,
    SorrentoEager,
}

fn build(sys: Sys, n: usize) -> AnyCluster {
    let seed = 110 + n as u64;
    match sys {
        Sys::Nfs => AnyCluster::Nfs(NfsCluster::new(seed, NfsCosts::default())),
        Sys::Pvfs8 => AnyCluster::Pvfs(PvfsCluster::new(8, seed, PvfsCosts::default())),
        Sys::SorrentoLazy | Sys::SorrentoEager => AnyCluster::Sorrento(Box::new(
            ClusterBuilder::new()
                .providers(8)
                .replication(2)
                .seed(seed)
                .build(),
        )),
    }
}

fn options(sys: Sys) -> FileOptions {
    let mut o = bulk_options();
    o.replication = 2;
    o.eager_commit = sys == Sys::SorrentoEager;
    o
}

/// Aggregate MB/s for `n` clients in `mode`.
fn rate(sys: Sys, n: usize, mode: BulkMode, telemetry: &mut TelemetryExport) -> f64 {
    let sys_name = match sys {
        Sys::Nfs => "nfs",
        Sys::Pvfs8 => "pvfs",
        Sys::SorrentoLazy => "lazy",
        Sys::SorrentoEager => "eager",
    };
    eprintln!("[fig11] sys={sys_name} n={n} mode={mode:?}");
    let mut cluster = build(sys, n);
    let opts = options(sys);
    // Pre-populate each client's own file (disjoint sets).
    for i in 0..n {
        let pop = populate_script(&format!("/c{i}-f"), 1, file_size(), opts);
        let stats = cluster.run_script(pop, CAP);
        assert_eq!(stats.failed_ops, 0, "populate failed: {:?}", stats.last_error);
    }
    // Let lazy replication of the dataset settle so it does not compete
    // with the measurement window.
    cluster.run_for(Dur::nanos(120_000_000_000));
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let w = BulkIo::new(format!("/c{i}-f"), 1, file_size(), mode, Some(quota()));
            cluster.add_client_with_options(Box::new(w), opts)
        })
        .collect();
    let finish = cluster.run_to_finish(&ids, CAP);
    let mut start = None;
    let mut bytes = 0;
    for &id in &ids {
        let s = cluster.stats(id);
        assert_eq!(
            s.failed_ops,
            0,
            "bulk client failed (n={n} mode={mode:?}): {:?}",
            s.last_error
        );
        bytes += s.bytes_read + s.bytes_written;
        start = match (start, s.started_at) {
            (None, t) => t,
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
        };
    }
    let window = finish.since(start.expect("clients ran")).as_secs_f64();
    telemetry.snapshot_cluster(&format!("{sys_name}/{mode:?}/n{n}"), &cluster);
    mbps(bytes, window)
}

fn main() {
    let mut telemetry = TelemetryExport::new("fig11");
    for (mode, title) in [
        (BulkMode::Read, "Figure 11a: bulkread aggregate rate (MB/s)"),
        (BulkMode::Write, "Figure 11b: bulkwrite aggregate rate (MB/s)"),
    ] {
        let mut rows = Vec::new();
        for n in CLIENT_COUNTS {
            let nfs = rate(Sys::Nfs, n, mode, &mut telemetry);
            let pvfs = rate(Sys::Pvfs8, n, mode, &mut telemetry);
            let lazy = rate(Sys::SorrentoLazy, n, mode, &mut telemetry);
            let eager = if mode == BulkMode::Write {
                Some(rate(Sys::SorrentoEager, n, mode, &mut telemetry))
            } else {
                None
            };
            let mut row = vec![n.to_string(), f1(nfs), f1(pvfs), f1(lazy)];
            if let Some(e) = eager {
                row.push(f1(e));
            }
            rows.push(row);
        }
        let header: &[&str] = if mode == BulkMode::Write {
            &["clients", "NFS", "PVFS-8", "Sorrento-(8,2)", "Sorrento-(8,2)-eager"]
        } else {
            &["clients", "NFS", "PVFS-8", "Sorrento-(8,2)"]
        };
        print_table(title, header, &rows);
    }
    telemetry.write();
}
