//! **Figure 10** — sustained small-file session throughput vs client
//! count.
//!
//! N clients each loop create → 12 KB write → close; throughput is
//! completed sessions/second. Paper's shape: NFS saturates ≈ 700
//! sessions/s; PVFS saturates ≈ 64 sessions/s (metadata-manager disk
//! bottleneck); Sorrento-(8,2) scales almost linearly through 16 clients
//! (namespace capacity ≈ 1300 ops/s ⇒ a 400–500 sessions/s ceiling it
//! does not reach).

use sorrento::cluster::ClusterBuilder;
use sorrento_baselines::nfs::{NfsCluster, NfsCosts};
use sorrento_baselines::pvfs::{PvfsCluster, PvfsCosts};
use sorrento_bench::{f1, print_table, AnyCluster, ByteSnapshot, TelemetryExport};
use sorrento_sim::Dur;
use sorrento_workloads::smallfile::SessionLoop;

const CLIENT_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const WARMUP: Dur = Dur::nanos(10_000_000_000);
const WINDOW: Dur = Dur::nanos(60_000_000_000);

fn make(system: &str, nclients: usize) -> AnyCluster {
    let seed = 100 + nclients as u64;
    match system {
        "NFS" => AnyCluster::Nfs(NfsCluster::new(seed, NfsCosts::default())),
        "PVFS-8" => AnyCluster::Pvfs(PvfsCluster::new(8, seed, PvfsCosts::default())),
        _ => AnyCluster::Sorrento(Box::new(
            ClusterBuilder::new()
                .providers(8)
                .replication(2)
                .seed(seed)
                .build(),
        )),
    }
}

/// Sessions/second for `n` looping clients on one backend.
fn throughput(system: &str, n: usize, telemetry: &mut TelemetryExport) -> f64 {
    let mut cluster = make(system, n);
    let ids: Vec<_> = (0..n)
        .map(|i| cluster.add_client(Box::new(SessionLoop::new(format!("/c{i}")))))
        .collect();
    cluster.run_for(WARMUP);
    let before: Vec<ByteSnapshot> = ids.iter().map(|&id| ByteSnapshot::of(&cluster.stats(id))).collect();
    cluster.run_for(WINDOW);
    let mut sessions = 0;
    for (k, &id) in ids.iter().enumerate() {
        let d = ByteSnapshot::of(&cluster.stats(id)).since(before[k]);
        sessions += d.closes;
    }
    telemetry.snapshot_cluster(&format!("{system}/n{n}"), &cluster);
    sessions as f64 / WINDOW.as_secs_f64()
}

fn main() {
    let mut telemetry = TelemetryExport::new("fig10");
    let mut rows = Vec::new();
    for n in CLIENT_COUNTS {
        let nfs = throughput("NFS", n, &mut telemetry);
        let pvfs = throughput("PVFS-8", n, &mut telemetry);
        let sor = throughput("Sorrento-(8,2)", n, &mut telemetry);
        rows.push(vec![n.to_string(), f1(nfs), f1(pvfs), f1(sor)]);
    }
    print_table(
        "Figure 10: small-file session throughput (sessions/s)",
        &["clients", "NFS", "PVFS-8", "Sorrento-(8,2)"],
        &rows,
    );
    telemetry.write();
}
