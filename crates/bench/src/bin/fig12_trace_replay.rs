//! **Figure 12** — application trace replay: NAS BTIO and parallel
//! Protein Sequence Matching (PSM).
//!
//! BTIO: 4 replayers write 2.7 GB and read 1.7 GB of a shared solution
//! file (byte-range / versioning-off mode in Sorrento). PSM: 8 replayers
//! read 3.1 GB total from their assigned partitions, as fast as they
//! can. Reported: min/max/avg client execution time and aggregate
//! transfer rates.
//!
//! Paper's shape: NFS ≈ 10× slower than both parallel systems; PVFS ≈
//! 11% faster than Sorrento on BTIO (its native workload); Sorrento
//! slightly faster than PVFS on PSM.

use sorrento::cluster::ClusterBuilder;
use sorrento_baselines::nfs::{NfsCluster, NfsCosts};
use sorrento_baselines::pvfs::{PvfsCluster, PvfsCosts};
use sorrento_bench::{f1, full_scale, mbps, print_table, AnyCluster, TelemetryExport};
use sorrento_sim::Dur;
use sorrento_workloads::btio::{coordinator_script, rank_trace, solution_options, BtioConfig};
use sorrento_workloads::psm::{import_script, PsmConfig, PsmService};
use sorrento_workloads::replay::{ReplayMode, TraceReplayer};

const CAP: Dur = Dur::nanos(40_000_000_000_000);

fn build(system: &str, seed: u64) -> AnyCluster {
    match system {
        "NFS" => AnyCluster::Nfs(NfsCluster::new(seed, NfsCosts::default())),
        "PVFS-8" => AnyCluster::Pvfs(PvfsCluster::new(8, seed, PvfsCosts::default())),
        _ => AnyCluster::Sorrento(Box::new(
            ClusterBuilder::new()
                .providers(8)
                .replication(1)
                .seed(seed)
                .build(),
        )),
    }
}

struct Row {
    min_s: f64,
    max_s: f64,
    avg_s: f64,
    read_mbps: f64,
    write_mbps: f64,
}

fn summarize(cluster: &AnyCluster, ids: &[sorrento_sim::NodeId]) -> Row {
    let mut durations = Vec::new();
    let mut read = 0;
    let mut written = 0;
    let mut earliest = None;
    let mut latest = None;
    for &id in ids {
        let s = cluster.stats(id);
        assert_eq!(s.failed_ops, 0, "replayer failed: {:?}", s.last_error);
        let start = s.started_at.expect("started");
        let end = s.finished_at.expect("finished");
        durations.push(end.since(start).as_secs_f64());
        read += s.bytes_read;
        written += s.bytes_written;
        earliest = Some(earliest.map_or(start, |e: sorrento_sim::SimTime| e.min(start)));
        latest = Some(latest.map_or(end, |l: sorrento_sim::SimTime| l.max(end)));
    }
    let span = latest.unwrap().since(earliest.unwrap()).as_secs_f64();
    Row {
        min_s: durations.iter().cloned().fold(f64::INFINITY, f64::min),
        max_s: durations.iter().cloned().fold(0.0, f64::max),
        avg_s: durations.iter().sum::<f64>() / durations.len() as f64,
        read_mbps: mbps(read, span),
        write_mbps: mbps(written, span),
    }
}

fn btio(system: &str, telemetry: &mut TelemetryExport) -> Row {
    let div = if full_scale() { 1 } else { 16 };
    let cfg = BtioConfig {
        write_total: (2_700 << 20) / div,
        read_total: (1_700 << 20) / div,
        ..BtioConfig::default()
    };
    let mut cluster = build(system, 120);
    // Rank 0's coordinator pre-sizes the shared file (Sorrento gets the
    // versioning-off striped options; the baselines just see the ops).
    let coord = if matches!(cluster, AnyCluster::Sorrento(_)) {
        coordinator_script(&cfg, 8)
    } else {
        // Baselines pre-size through a plain create + write.
        let mut ops = coordinator_script(&cfg, 8);
        if let sorrento::client::ClientOp::CreateWith { path, .. } = &ops[0] {
            ops[0] = sorrento::client::ClientOp::Create { path: path.clone() };
        }
        ops
    };
    let stats = cluster.run_script(coord, CAP);
    assert_eq!(stats.failed_ops, 0, "coordinator failed: {:?}", stats.last_error);
    let opts = solution_options(&cfg, 8);
    let ids: Vec<_> = (0..cfg.ranks)
        .map(|r| {
            let replayer = TraceReplayer::new(rank_trace(&cfg, r), ReplayMode::AsFast);
            cluster.add_client_with_options(Box::new(replayer), opts)
        })
        .collect();
    cluster.run_to_finish(&ids, CAP);
    telemetry.snapshot_cluster(&format!("BTIO/{system}"), &cluster);
    summarize(&cluster, &ids)
}

fn psm(system: &str, telemetry: &mut TelemetryExport) -> Row {
    let div = if full_scale() { 1 } else { 16 };
    let cfg = PsmConfig {
        min_partition: (1 << 30) / div,
        max_partition: (3 << 29) / div,
        scan_per_query: (256 << 10).min((1 << 30) / div / 4),
        query_gap: Dur::ZERO, // as fast as they can (§4.2.2)
        queries: Some(((3_100 << 20) / div / 8) / (256 << 10) / 3 + 1),
        ..PsmConfig::default()
    };
    let mut cluster = build(system, 121);
    let stats = cluster.run_script(import_script(&cfg, None), CAP);
    assert_eq!(stats.failed_ops, 0, "import failed: {:?}", stats.last_error);
    let ids: Vec<_> = (0..8)
        .map(|p| {
            let parts: Vec<usize> = (0..3).map(|k| p * 3 + k).collect();
            cluster.add_client(Box::new(PsmService::new(cfg.clone(), parts)))
        })
        .collect();
    cluster.run_to_finish(&ids, CAP);
    telemetry.snapshot_cluster(&format!("PSM/{system}"), &cluster);
    summarize(&cluster, &ids)
}

fn main() {
    let mut telemetry = TelemetryExport::new("fig12");
    let mut rows = Vec::new();
    for (app, runner) in [
        ("BTIO", btio as fn(&str, &mut TelemetryExport) -> Row),
        ("PSM", psm as fn(&str, &mut TelemetryExport) -> Row),
    ] {
        for system in ["NFS", "PVFS-8", "Sorrento-(8,1)"] {
            let r = runner(system, &mut telemetry);
            rows.push(vec![
                app.to_string(),
                system.to_string(),
                f1(r.min_s),
                f1(r.max_s),
                f1(r.avg_s),
                f1(r.read_mbps),
                f1(r.write_mbps),
            ]);
        }
    }
    print_table(
        "Figure 12: BTIO + PSM trace replay",
        &["app", "system", "min_s", "max_s", "avg_s", "read_MB/s", "write_MB/s"],
        &rows,
    );
    telemetry.write();
}
