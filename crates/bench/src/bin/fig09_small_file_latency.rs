//! **Figure 9** — small-file I/O request response times (ms).
//!
//! One client issues sequential sessions against an idle file system:
//! `create` (create + close), `write` (open + 12 KB write + close),
//! `read` (open + 12 KB read + close), `unlink`. Compared across NFS,
//! PVFS-4/8 and Sorrento-(4/8, 1/2).
//!
//! Paper's values (ms):
//! ```text
//!                  create  write  read  unlink
//! NFS              0.67    2.42   2.93  0.71
//! PVFS-4           50.3    60.1   60.1  19.4
//! PVFS-8           60.1    60.3   70.2  22.9
//! Sorrento-(4,1)   31.4    43.5   33.5  32.4
//! Sorrento-(4,2)   31.3    44.0   33.7  44.3
//! Sorrento-(8,1)   32.6    45.4   34.4  32.2
//! Sorrento-(8,2)   33.2    46.7   34.8  42.2
//! ```
//! Expected shape: NFS ≪ Sorrento < PVFS; Sorrento write > read ≈
//! create; unlink grows with the replication degree (eager replica
//! removal).

use sorrento::client::ClientOp;
use sorrento::cluster::ClusterBuilder;
use sorrento_baselines::nfs::{NfsCluster, NfsCosts};
use sorrento_baselines::pvfs::{PvfsCluster, PvfsCosts};
use sorrento_bench::{f2, print_table, AnyCluster, TelemetryExport};
use sorrento_sim::Dur;
use sorrento_workloads::smallfile::SMALL_IO;

// More files than the PVFS manager's inode cache so every phase's
// lookups are cold, as in the paper's repeated-create benchmark.
const FILES: usize = 48;
const CAP: Dur = Dur::nanos(600_000_000_000);

fn path(i: usize) -> String {
    format!("/bench/f{i}")
}

/// Run the four phases on one backend; returns mean session latency (ms)
/// per phase.
fn measure(cluster: &mut AnyCluster) -> [f64; 4] {
    cluster.run_script(vec![ClientOp::Mkdir { path: "/bench".into() }], CAP);
    let mut out = [0.0; 4];
    // Phase scripts: each is a fresh client so sessions are sequential
    // and the phase duration divides cleanly.
    let phases: [Vec<ClientOp>; 4] = [
        (0..FILES)
            .flat_map(|i| vec![ClientOp::Create { path: path(i) }, ClientOp::Close])
            .collect(),
        (0..FILES)
            .flat_map(|i| {
                vec![
                    ClientOp::Open { path: path(i), write: true },
                    ClientOp::write_synth(0, SMALL_IO),
                    ClientOp::Close,
                ]
            })
            .collect(),
        (0..FILES)
            .flat_map(|i| {
                vec![
                    ClientOp::Open { path: path(i), write: false },
                    ClientOp::Read { offset: 0, len: SMALL_IO },
                    ClientOp::Close,
                ]
            })
            .collect(),
        (0..FILES)
            .map(|i| ClientOp::Unlink { path: path(i) })
            .collect(),
    ];
    for (k, ops) in phases.into_iter().enumerate() {
        let stats = cluster.run_script(ops, CAP);
        assert_eq!(stats.failed_ops, 0, "phase {k} failed: {:?}", stats.last_error);
        let start = stats.started_at.expect("script started");
        let end = stats.finished_at.expect("script finished");
        out[k] = end.since(start).as_millis_f64() / FILES as f64;
    }
    out
}

fn main() {
    let mut telemetry = TelemetryExport::new("fig09");
    let mut rows = Vec::new();
    let systems: Vec<(String, AnyCluster)> = vec![
        ("NFS".into(), AnyCluster::Nfs(NfsCluster::new(1, NfsCosts::default()))),
        (
            "PVFS-4".into(),
            AnyCluster::Pvfs(PvfsCluster::new(4, 1, PvfsCosts::default())),
        ),
        (
            "PVFS-8".into(),
            AnyCluster::Pvfs(PvfsCluster::new(8, 1, PvfsCosts::default())),
        ),
    ];
    for (name, mut cluster) in systems {
        let m = measure(&mut cluster);
        telemetry.snapshot_cluster(&name, &cluster);
        rows.push(vec![name, f2(m[0]), f2(m[1]), f2(m[2]), f2(m[3])]);
    }
    for (n, r) in [(4usize, 1u32), (4, 2), (8, 1), (8, 2)] {
        let cluster = ClusterBuilder::new()
            .providers(n)
            .replication(r)
            .seed(90 + n as u64 * 10 + r as u64)
            .build();
        let mut cluster = AnyCluster::Sorrento(Box::new(cluster));
        let m = measure(&mut cluster);
        telemetry.snapshot_cluster(&format!("Sorrento-({n},{r})"), &cluster);
        rows.push(vec![
            format!("Sorrento-({n},{r})"),
            f2(m[0]),
            f2(m[1]),
            f2(m[2]),
            f2(m[3]),
        ]);
    }
    print_table(
        "Figure 9: small-file response time (ms)",
        &["system", "create", "write", "read", "unlink"],
        &rows,
    );
    telemetry.write();
}
