//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. the §3.7.2 small-segment home-host weight boost (3N) — does it
//!    actually save the extra location round-trip on small-file opens?
//! 2. virtual-node count on the consistent-hash ring — home-host balance
//!    vs ring size;
//! 3. version retention (`keep_versions`) — storage overhead of keeping
//!    extra stable versions as failure backups (§3.5).
//!
//! ```sh
//! cargo run --release -p sorrento-bench --bin ablations
//! ```

use sorrento::client::ClientOp;
use sorrento::cluster::ClusterBuilder;
use sorrento::costs::CostModel;
use sorrento::ring::HashRing;
use sorrento::types::SegId;
use sorrento_bench::{f2, mean_latency_ms, print_table, AnyCluster, TelemetryExport};
use sorrento_sim::{Dur, NodeId};

const CAP: Dur = Dur::nanos(600_000_000_000);

/// 1. Home-host boost: mean open+read+close latency on 12 KB files.
fn ablate_home_boost(telemetry: &mut TelemetryExport) {
    let mut rows = Vec::new();
    for boost in [true, false] {
        let costs = CostModel {
            home_boost: boost,
            ..CostModel::default()
        };
        let cluster = ClusterBuilder::new()
            .providers(8)
            .replication(1)
            .seed(201)
            .costs(costs)
            .build();
        let mut cluster = AnyCluster::Sorrento(Box::new(cluster));
        let n = 40;
        let mut ops = Vec::new();
        for i in 0..n {
            ops.push(ClientOp::Create { path: format!("/h{i}") });
            ops.push(ClientOp::write_synth(0, 12 << 10));
            ops.push(ClientOp::Close);
        }
        let w = cluster.run_script(ops, CAP);
        assert_eq!(w.failed_ops, 0);
        let mut ops = Vec::new();
        for i in 0..n {
            ops.push(ClientOp::Open { path: format!("/h{i}"), write: false });
            ops.push(ClientOp::Read { offset: 0, len: 12 << 10 });
            ops.push(ClientOp::Close);
        }
        let r = cluster.run_script(ops, CAP);
        assert_eq!(r.failed_ops, 0);
        let label = if boost { "with 3N boost" } else { "no boost" };
        telemetry.snapshot_cluster(&format!("home_boost/{label}"), &cluster);
        rows.push(vec![label.to_string(), f2(mean_latency_ms(&r, "open"))]);
    }
    print_table(
        "Ablation 1: §3.7.2 home-host boost — small-file open latency",
        &["placement", "open_ms"],
        &rows,
    );
}

/// 2. Virtual nodes: home-host balance (max/mean keys per provider).
fn ablate_vnodes() {
    let providers: Vec<NodeId> = (0..10).map(NodeId::from_index).collect();
    let keys: Vec<SegId> = (0..20_000u64).map(|i| SegId::derive(7, i, i ^ 99)).collect();
    let mut rows = Vec::new();
    for vnodes in [1u32, 4, 16, 64, 256] {
        let ring = HashRing::build_with_vnodes(providers.clone(), vnodes);
        let mut counts = vec![0usize; providers.len()];
        for &k in &keys {
            counts[ring.home(k).unwrap().index()] += 1;
        }
        let mean = keys.len() as f64 / providers.len() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        rows.push(vec![
            vnodes.to_string(),
            f2(max / mean),
            f2(min / mean),
        ]);
    }
    print_table(
        "Ablation 2: virtual nodes per provider — home-host balance (10 providers, 20k keys)",
        &["vnodes", "max/mean", "min/mean"],
        &rows,
    );
}

/// 3. keep_versions: disk overhead after repeated overwrites.
fn ablate_keep_versions(telemetry: &mut TelemetryExport) {
    let mut rows = Vec::new();
    for keep in [1usize, 2, 4] {
        let cluster = ClusterBuilder::new()
            .providers(4)
            .replication(1)
            .seed(203)
            .keep_versions(keep)
            .build();
        let mut cluster = AnyCluster::Sorrento(Box::new(cluster));
        let mut ops = vec![ClientOp::Create { path: "/v".into() }];
        ops.push(ClientOp::write_synth(0, 8 << 20));
        ops.push(ClientOp::Close);
        // Ten full-file overwrites.
        for _ in 0..10 {
            ops.push(ClientOp::Open { path: "/v".into(), write: true });
            ops.push(ClientOp::write_synth(0, 8 << 20));
            ops.push(ClientOp::Close);
        }
        let s = cluster.run_script(ops, CAP);
        assert_eq!(s.failed_ops, 0, "{:?}", s.last_error);
        let AnyCluster::Sorrento(c) = &cluster else {
            unreachable!()
        };
        let used: u64 = c
            .provider_disk_usage()
            .iter()
            .map(|(_, used, _)| *used)
            .sum();
        telemetry.snapshot_cluster(&format!("keep_versions/{keep}"), &cluster);
        rows.push(vec![
            keep.to_string(),
            format!("{:.1}", used as f64 / (8 << 20) as f64),
        ]);
    }
    print_table(
        "Ablation 3: retained versions — disk bytes / logical bytes after 10 overwrites",
        &["keep_versions", "overhead_x"],
        &rows,
    );
}

fn main() {
    let mut telemetry = TelemetryExport::new("ablations");
    ablate_home_boost(&mut telemetry);
    ablate_vnodes();
    ablate_keep_versions(&mut telemetry);
    telemetry.write();
}
