//! Criterion microbenchmarks over the core data structures: the hash
//! ring, the COW region index, the sparse buffer, the kvdb, placement
//! selection, the location table, and a whole simulated small-file
//! session (simulator throughput).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sorrento::client::ClientOp;
use sorrento::cluster::{ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::location::LocationTable;
use sorrento::placement::{select_provider, Candidate};
use sorrento::ring::HashRing;
use sorrento::store::{RegionIndex, SparseBuffer};
use sorrento::types::{PlacementPolicy, SegId, Version};
use sorrento_kvdb::{Db, DbConfig, MemBackend};
use sorrento_sim::{Dur, NodeId, SimTime};

fn segs(n: u64) -> Vec<SegId> {
    (0..n).map(|i| SegId::derive(1, i, i ^ 0x5a5a)).collect()
}

fn bench_hash_ring(c: &mut Criterion) {
    let ring = HashRing::build((0..38).map(NodeId::from_index));
    let keys = segs(1024);
    c.bench_function("ring/home_lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            ring.home(keys[i])
        })
    });
    c.bench_function("ring/build_38_providers", |b| {
        b.iter(|| HashRing::build((0..38).map(NodeId::from_index)))
    });
}

fn bench_region_index(c: &mut Criterion) {
    c.bench_function("region_index/overlay_1k", |b| {
        b.iter_batched(
            || RegionIndex::<u32>::full(1 << 30, Some(0)),
            |mut ix| {
                for i in 0..1000u64 {
                    let start = (i * 7919) % ((1 << 30) - 4096);
                    ix.overlay(start, start + 4096, Some(i as u32));
                }
                ix
            },
            BatchSize::SmallInput,
        )
    });
    let mut ix = RegionIndex::<u32>::full(1 << 30, Some(0));
    for i in 0..1000u64 {
        let start = (i * 7919) % ((1 << 30) - 4096);
        ix.overlay(start, start + 4096, Some(i as u32));
    }
    c.bench_function("region_index/resolve_4MB", |b| {
        b.iter(|| ix.resolve(100 << 20, 104 << 20))
    });
}

fn bench_sparse_buffer(c: &mut Criterion) {
    c.bench_function("sparse_buffer/write_64k_chunks", |b| {
        let chunk = vec![7u8; 64 << 10];
        b.iter_batched(
            SparseBuffer::new,
            |mut buf| {
                for i in 0..64u64 {
                    buf.write(i * (64 << 10), &chunk);
                }
                buf
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_kvdb(c: &mut Criterion) {
    c.bench_function("kvdb/put_1k_entries", |b| {
        b.iter_batched(
            || Db::open(MemBackend::new(), DbConfig::default()).unwrap(),
            |mut db| {
                for i in 0..1000u32 {
                    db.put(i.to_le_bytes(), [0u8; 64]).unwrap();
                }
                db
            },
            BatchSize::SmallInput,
        )
    });
    let mut db = Db::open(MemBackend::new(), DbConfig::default()).unwrap();
    for i in 0..10_000u32 {
        db.put(i.to_le_bytes(), [0u8; 64]).unwrap();
    }
    c.bench_function("kvdb/get", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            db.get(i.to_le_bytes())
        })
    });
    c.bench_function("kvdb/recovery_10k_entries", |b| {
        let backend = {
            let mut db = Db::open(MemBackend::new(), DbConfig::default()).unwrap();
            for i in 0..10_000u32 {
                db.put(i.to_le_bytes(), [0u8; 64]).unwrap();
            }
            db.into_backend()
        };
        b.iter_batched(
            || backend.clone(),
            |be| Db::open(be, DbConfig::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_placement(c: &mut Criterion) {
    let cands: Vec<Candidate> = (0..38)
        .map(|i| Candidate {
            id: NodeId::from_index(i),
            load: (i as f64) / 40.0,
            available: 1 << 34,
        })
        .collect();
    let mut rng = SmallRng::seed_from_u64(1);
    c.bench_function("placement/select_38_candidates", |b| {
        b.iter(|| {
            select_provider(
                &cands,
                4 << 20,
                0.5,
                PlacementPolicy::LoadAware,
                &[],
                None,
                &mut rng,
            )
        })
    });
}

fn bench_location_table(c: &mut Criterion) {
    let keys = segs(10_000);
    c.bench_function("location_table/upsert_10k", |b| {
        b.iter_batched(
            LocationTable::new,
            |mut lt| {
                for (i, &s) in keys.iter().enumerate() {
                    lt.upsert(
                        s,
                        NodeId::from_index(i % 10),
                        Version(1),
                        2,
                        4096,
                        SimTime::ZERO,
                    );
                }
                lt
            },
            BatchSize::SmallInput,
        )
    });
    let mut lt = LocationTable::new();
    let mut rng = SmallRng::seed_from_u64(2);
    for &s in &keys {
        lt.upsert(
            s,
            NodeId::from_index(rng.gen_range(0..10)),
            Version(1),
            2,
            4096,
            SimTime::ZERO,
        );
    }
    c.bench_function("location_table/lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            lt.lookup(keys[i])
        })
    });
    c.bench_function("location_table/remove_provider", |b| {
        b.iter_batched(
            || {
                let mut lt = LocationTable::new();
                for (i, &s) in keys.iter().enumerate() {
                    lt.upsert(s, NodeId::from_index(i % 10), Version(1), 2, 4096, SimTime::ZERO);
                }
                lt
            },
            |mut lt| lt.remove_provider(NodeId::from_index(3)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulated_session(c: &mut Criterion) {
    // Simulator throughput: one full create/write/read/close session
    // through an entire simulated 4-provider cluster.
    c.bench_function("sim/full_small_file_session", |b| {
        b.iter_batched(
            || {
                ClusterBuilder::new()
                    .providers(4)
                    .seed(9)
                    .costs(CostModel::fast_test())
                    .build()
            },
            |mut cluster| {
                let id = cluster.add_client(ScriptedWorkload::new(vec![
                    ClientOp::Create { path: "/bench".into() },
                    ClientOp::write_synth(0, 12 << 10),
                    ClientOp::Close,
                    ClientOp::Open { path: "/bench".into(), write: false },
                    ClientOp::Read { offset: 0, len: 12 << 10 },
                    ClientOp::Close,
                ]));
                cluster.run_for(Dur::secs(30));
                assert_eq!(cluster.client_stats(id).unwrap().failed_ops, 0);
                cluster
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_hash_ring,
    bench_region_index,
    bench_sparse_buffer,
    bench_kvdb,
    bench_placement,
    bench_location_table,
    bench_simulated_session,
);
criterion_main!(benches);
