//! A partitioned query service (the paper's §4.5 Protein Sequence
//! Matching scenario): service processes co-located with storage
//! providers scan their assigned database partitions per query, and the
//! locality-driven placement policy migrates each partition to the node
//! that actually reads it — live, with no service interruption.
//!
//! ```sh
//! cargo run -p sorrento-examples --bin locality_psm
//! ```

use sorrento::client::SorrentoClient;
use sorrento::cluster::{ClusterBuilder, ScriptedWorkload};
use sorrento::types::{FileOptions, PlacementPolicy};
use sorrento_sim::Dur;
use sorrento_workloads::psm::{import_script, PsmConfig, PsmService};

fn main() {
    let providers = 4;
    let cfg = PsmConfig {
        partitions: 8,
        per_process: 2,
        min_partition: 48 << 20,
        max_partition: 72 << 20,
        scan_per_query: 256 << 10,
        chunk: 128 << 10,
        query_gap: Dur::millis(300),
        queries: None,
    };
    let mut cluster = ClusterBuilder::new()
        .providers(providers)
        .replication(1)
        .seed(42)
        .build();

    // Import the partitions with the locality-driven policy: migrate a
    // partition once >60% of its recent traffic comes from one machine.
    let loader = cluster.add_client(ScriptedWorkload::new(import_script(&cfg, Some(0.6))));
    loop {
        cluster.run_for(Dur::secs(5));
        if cluster.client_stats(loader).unwrap().finished_at.is_some() {
            break;
        }
    }
    println!("imported {} partitions", cfg.partitions);

    // One service process per provider machine, each owning 2 partitions.
    let options = FileOptions {
        placement: PlacementPolicy::LocalityDriven { threshold: 0.6 },
        ..FileOptions::default()
    };
    let mut services = Vec::new();
    for p in 0..providers {
        let parts: Vec<usize> = (0..cfg.per_process).map(|k| p * cfg.per_process + k).collect();
        let id = cluster.add_client_on_provider_with_options(
            PsmService::new(cfg.clone(), parts),
            p,
            options,
        );
        services.push(id);
    }

    // Watch the mean per-query I/O time fall as partitions co-locate.
    let mut consumed = vec![0usize; services.len()];
    for minute in 1..=12 {
        cluster.run_for(Dur::minutes(1));
        let mut total_ms = 0.0;
        let mut count = 0;
        for (k, &id) in services.iter().enumerate() {
            let q = cluster
                .sim
                .node_ref::<SorrentoClient>(id)
                .and_then(|c| c.workload_ref::<PsmService>())
                .map(|s| s.query_io.clone())
                .unwrap_or_default();
            for &(_, io) in &q[consumed[k]..] {
                total_ms += io.as_millis_f64();
                count += 1;
            }
            consumed[k] = q.len();
        }
        let migrations = cluster.metrics().counter("sorrento.migrations_done");
        if count > 0 {
            println!(
                "t={minute:>2}min  {:>6.1} ms/query I/O  ({count} queries, {migrations} segments migrated so far)",
                total_ms / count as f64
            );
        }
    }
    println!("\nfinal data placement (bytes per provider):");
    for (id, used, _) in cluster.provider_disk_usage() {
        println!("  {id}: {} MB", used >> 20);
    }
}
