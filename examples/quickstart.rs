//! Quickstart: bring up a Sorrento volume, write a file, read it back,
//! inspect the self-organized state.
//!
//! ```sh
//! cargo run -p sorrento-examples --bin quickstart
//! ```

use sorrento::client::ClientOp;
use sorrento::cluster::{ClusterBuilder, ScriptedWorkload};
use sorrento_sim::Dur;

fn main() {
    // A Sorrento-(4, 2) deployment: 4 storage providers, every file
    // replicated twice. One namespace server manages the volume.
    let mut cluster = ClusterBuilder::new()
        .providers(4)
        .replication(2)
        .seed(2026)
        .build();

    let payload = b"Sorrento stores this sentence on commodity nodes, \
                    versioned, replicated, and self-organized."
        .to_vec();
    let n = payload.len() as u64;

    let client = cluster.add_client(ScriptedWorkload::new(vec![
        ClientOp::Mkdir { path: "/demo".into() },
        ClientOp::Create { path: "/demo/hello".into() },
        ClientOp::write_bytes(0, payload.clone()),
        ClientOp::Close, // close = version commit (2PC across owners)
        ClientOp::Open { path: "/demo/hello".into(), write: false },
        ClientOp::Read { offset: 0, len: n },
        ClientOp::Close,
        ClientOp::Stat { path: "/demo/hello".into() },
    ]));

    // Run a minute of virtual time: plenty for the ops plus the lazy
    // replication that follows the commit.
    cluster.run_for(Dur::secs(60));

    let stats = cluster.client_stats(client).expect("client exists");
    assert_eq!(stats.failed_ops, 0, "ops failed: {:?}", stats.last_error);
    assert_eq!(stats.last_read.as_deref(), Some(&payload[..]));
    println!("read back {} bytes, byte-for-byte identical", n);

    for (kind, latency) in &stats.latencies {
        println!("  {kind:<8} {latency}");
    }

    // The home hosts repaired replication in the background: every
    // segment (index + data) now has two owners.
    println!("\nsegment ownership after lazy replication:");
    for (seg, owners) in cluster.segment_ownership() {
        println!("  {seg:?} -> {owners:?}");
        assert_eq!(owners.len(), 2, "replication degree not met");
    }
    println!("\nnamespace entries: {}", cluster.namespace_ref().unwrap().entry_count());
}
