//! A failure drill (the paper's §2.2 manageability story): kill a
//! storage provider mid-workload, watch reads keep flowing from the
//! surviving replicas, watch the home hosts restore the replication
//! degree, then plug in a brand-new node and watch it get used — zero
//! operator commands beyond "power off" and "power on".
//!
//! ```sh
//! cargo run -p sorrento-examples --bin failure_drill
//! ```

use sorrento::client::ClientOp;
use sorrento::cluster::{ClusterBuilder, ScriptedWorkload};
use sorrento_json::Json;
use sorrento_sim::Dur;
use sorrento_workloads::bulk::{populate_script, BulkIo, BulkMode};

fn main() {
    let mut cluster = ClusterBuilder::new()
        .providers(5)
        .replication(2)
        .capacity(8_000_000_000)
        .seed(99)
        .build();

    // The populate scripts create under /data: make it first.
    let mkdir = cluster.add_client(ScriptedWorkload::new(vec![ClientOp::Mkdir {
        path: "/data".into(),
    }]));
    cluster.run_for(Dur::secs(10));
    assert_eq!(cluster.client_stats(mkdir).unwrap().failed_ops, 0);

    // Populate 8 × 32 MB files.
    let mut opts = sorrento_workloads::bulk::bulk_options();
    opts.replication = 2;
    let loader = cluster.add_client(ScriptedWorkload::new(populate_script(
        "/data/f", 8, 32 << 20, opts,
    )));
    loop {
        cluster.run_for(Dur::secs(2));
        if cluster.client_stats(loader).unwrap().finished_at.is_some() {
            break;
        }
    }
    assert_eq!(cluster.client_stats(loader).unwrap().failed_ops, 0);
    // Wait for the home hosts' background repair to reach full degree.
    for _ in 0..120 {
        let under = cluster
            .segment_ownership()
            .values()
            .filter(|owners| owners.len() < 2)
            .count();
        if under == 0 {
            break;
        }
        cluster.run_for(Dur::secs(5));
    }
    let degree_ok = cluster
        .segment_ownership()
        .values()
        .all(|owners| owners.len() == 2);
    println!("populated; every segment at replication degree 2: {degree_ok}");

    // Constant read workload.
    let reader = cluster.add_client_with_options(
        BulkIo::new("/data/f", 8, 32 << 20, BulkMode::Read, None),
        opts,
    );

    // Kill the provider holding the most data.
    let victim = *cluster
        .provider_disk_usage()
        .iter()
        .max_by_key(|(_, used, _)| *used)
        .map(|(id, _, _)| id)
        .unwrap();
    let t = cluster.now();
    println!("\nkilling {victim} at t=+0s; adding a fresh node at t=+20s");
    cluster.crash_provider_at(t, victim);
    cluster.add_provider_at(t + Dur::secs(20), 8_000_000_000);

    // Watch the drill unfold.
    let mut last_read = 0;
    for step in 1..=12 {
        cluster.run_for(Dur::secs(10));
        let s = cluster.client_stats(reader).unwrap();
        let rate = (s.bytes_read - last_read) as f64 / 1e6 / 10.0;
        last_read = s.bytes_read;
        let under = cluster
            .segment_ownership()
            .values()
            .filter(|owners| owners.len() < 2)
            .count();
        println!(
            "t=+{:>3}s  reads {:>6.1} MB/s  failed_ops {}  under-replicated segments {}",
            step * 10,
            rate,
            s.failed_ops,
            under
        );
        if under == 0 && step >= 6 {
            break;
        }
    }
    let under = cluster
        .segment_ownership()
        .values()
        .filter(|owners| owners.len() < 2)
        .count();
    println!(
        "\ndrill complete: {} under-replicated segments remain; reads failed {} times",
        under,
        cluster.client_stats(reader).unwrap().failed_ops
    );

    // What the cluster saw, through its own telemetry: the failure
    // detector, membership churn, and the repair pipeline.
    let m = cluster.metrics();
    println!("\ntelemetry event counts:");
    for kind in ["hb.miss", "hb.death", "member.join", "member.leave", "loc.purge", "repair.start", "repair.done"] {
        println!("  {kind:<13} {}", m.counter_labeled("event", kind));
    }

    // Export the full registry for offline inspection (same schema as
    // the fig* harness binaries; see EXPERIMENTS.md).
    let doc = Json::obj()
        .with("experiment", "failure_drill")
        .with("systems", Json::obj().with("Sorrento-(5,2)", m.to_json()));
    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/telemetry_failure_drill.json";
    std::fs::write(path, doc.encode() + "\n").expect("write telemetry");
    println!("telemetry -> {path}");
}
