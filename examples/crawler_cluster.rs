//! A web-crawler storage cluster (the paper's §4.4 motivating scenario):
//! 20 crawlers with wildly different speeds append heavy-tailed domain
//! files onto a 6-node volume, and the load-aware placement plus online
//! migration keep storage usage balanced — no operator involved.
//!
//! ```sh
//! cargo run -p sorrento-examples --bin crawler_cluster
//! ```

use sorrento::cluster::ClusterBuilder;
use sorrento::types::{FileOptions, PlacementPolicy};
use sorrento_sim::Dur;
use sorrento_workloads::crawler::{Crawler, CrawlerConfig};

fn main() {
    let providers = 6;
    let mut cluster = ClusterBuilder::new()
        .providers(providers)
        .replication(1)
        .capacity(1_500_000_000)
        .seed(7)
        .build();

    // Crawled pages are written once and put away: space-based placement
    // (α = 0) is the right favoritism, per §3.7.2.
    let options = FileOptions {
        alpha: 0.0,
        placement: PlacementPolicy::LoadAware,
        ..FileOptions::default()
    };

    let mut crawlers = Vec::new();
    for c in 0..20usize {
        let cfg = CrawlerConfig {
            domains: 6,
            min_pages: 20,
            max_pages: 60_000,
            page_bytes: 10 * 1024,
            pages_per_write: 128,
            skew: 1.5,
            // >10× speed discrepancy between the fastest and slowest.
            fetch_think: Dur::millis(30 + 45 * (c as u64 % 10)),
        };
        let id = cluster.add_client_on_provider_with_options(
            Crawler::new(format!("c{c}"), cfg),
            c % providers,
            options,
        );
        crawlers.push(id);
    }

    // Crawl until done, printing the balance every 10 virtual minutes.
    let mut minutes = 0;
    loop {
        cluster.run_for(Dur::minutes(10));
        minutes += 10;
        let usage = cluster.provider_disk_usage();
        let fracs: Vec<f64> = usage
            .iter()
            .map(|&(_, used, cap)| used as f64 / cap as f64 * 100.0)
            .collect();
        let hi = fracs.iter().cloned().fold(0.0f64, f64::max);
        let lo = fracs.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "t={minutes:>4}min  usage per node: {}  (unevenness {:.2})",
            fracs
                .iter()
                .map(|f| format!("{f:>5.1}%"))
                .collect::<Vec<_>>()
                .join(" "),
            hi / lo.max(0.01)
        );
        let done = crawlers
            .iter()
            .filter(|&&id| cluster.client_stats(id).unwrap().finished_at.is_some())
            .count();
        if done == crawlers.len() {
            break;
        }
        assert!(minutes < 600, "crawl did not converge");
    }

    let stored: u64 = crawlers
        .iter()
        .map(|&id| cluster.client_stats(id).unwrap().bytes_written)
        .sum();
    let migrations = cluster.metrics().counter("sorrento.migrations_done");
    println!(
        "\ncrawl finished: {} MB stored across {providers} nodes, {migrations} segments migrated",
        stored >> 20
    );
    for (id, used, cap) in cluster.provider_disk_usage() {
        println!("  {id}: {:>5} MB of {} GB", used >> 20, cap / 1_000_000_000);
    }
}
