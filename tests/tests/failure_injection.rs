//! Failure-injection integration tests: crashes at awkward moments,
//! flapping nodes, and resource exhaustion.

use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento_sim::Dur;

fn cluster(providers: usize, r: u32, seed: u64) -> Cluster {
    ClusterBuilder::new()
        .providers(providers)
        .replication(r)
        .seed(seed)
        .costs(CostModel::fast_test())
        .build()
}

fn patterned(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(41) ^ seed).collect()
}

/// A provider crashes while a writer is mid-commit: the op either
/// completes or fails cleanly, the cluster stays consistent, and a
/// subsequent writer+reader pair works.
#[test]
fn crash_during_commit_window() {
    let mut c = cluster(4, 2, 61);
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/f".into() },
        ClientOp::write_bytes(0, patterned(500_000, 1)),
        ClientOp::Close,
    ]));
    // Crash a provider right inside the first commit window (the create
    // lands around t ≈ 5 s given the fast_test warmup).
    let t = c.now();
    let victim = c.providers()[0];
    c.crash_provider_at(t + Dur::millis(120), victim);
    c.run_for(Dur::secs(60));
    let ws = c.client_stats(writer).unwrap().clone();
    // Either outcome is legal; corruption is not.
    if ws.failed_ops > 0 {
        assert!(matches!(
            ws.last_error,
            Some(sorrento::Error::Timeout) | Some(sorrento::Error::VersionConflict)
        ));
    }
    // The system keeps working for fresh files.
    let verify = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/g".into() },
        ClientOp::write_bytes(0, patterned(100_000, 2)),
        ClientOp::Close,
        ClientOp::Open { path: "/g".into(), write: false },
        ClientOp::Read { offset: 0, len: 100_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(90));
    let vs = c.client_stats(verify).unwrap();
    assert_eq!(vs.failed_ops, 0, "{:?}", vs.last_error);
    assert_eq!(vs.last_read.as_deref(), Some(&patterned(100_000, 2)[..]));
}

/// A flapping provider (repeated crash/restart) must not wedge the
/// cluster: after it stabilizes, reads and the replication degree
/// recover.
#[test]
fn flapping_provider_recovers() {
    let mut c = cluster(4, 2, 62);
    let w = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/flap".into() },
        ClientOp::write_bytes(0, patterned(300_000, 3)),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(w).unwrap().failed_ops, 0);
    let victim = c.providers()[1];
    let t = c.now();
    for k in 0..4 {
        c.crash_provider_at(t + Dur::secs(k * 10), victim);
        c.restart_provider_at(t + Dur::secs(k * 10 + 4), victim);
    }
    c.run_for(Dur::secs(120));
    // Degree restored on live nodes.
    for (seg, owners) in c.segment_ownership() {
        assert!(owners.len() >= 2, "{seg:?}: {owners:?}");
    }
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/flap".into(), write: false },
        ClientOp::Read { offset: 0, len: 300_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0, "{:?}", rs.last_error);
    assert_eq!(rs.last_read.as_deref(), Some(&patterned(300_000, 3)[..]));
}

/// Losing more nodes than the replication degree tolerates loses access
/// (reads fail cleanly), and restarting them restores it — the §2.2
/// power-off/power-on story: no reformat, data survives on disk.
#[test]
fn total_outage_and_power_on_recovery() {
    let mut c = cluster(3, 1, 63);
    let data = patterned(200_000, 4);
    let w = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/solo".into() },
        ClientOp::write_bytes(0, data.clone()),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(20));
    assert_eq!(c.client_stats(w).unwrap().failed_ops, 0);
    // Power off every provider.
    let t = c.now();
    for &p in &c.providers().to_vec() {
        c.crash_provider_at(t, p);
    }
    let blind = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/solo".into(), write: false },
        ClientOp::Read { offset: 0, len: 200_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(40));
    // With no live providers the client either times out or (having an
    // empty membership view) never gets to issue the op at all — either
    // way nothing completes.
    let bs = c.client_stats(blind).unwrap();
    assert_eq!(bs.completed_ops, 0, "read completed during total outage");
    // Power on: disks intact, soft state rebuilt from refreshes.
    let t = c.now();
    for &p in &c.providers().to_vec() {
        c.restart_provider_at(t, p);
    }
    c.run_for(Dur::secs(30));
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/solo".into(), write: false },
        ClientOp::Read { offset: 0, len: 200_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0, "{:?}", rs.last_error);
    assert_eq!(rs.last_read.as_deref(), Some(&data[..]));
}

/// Disk exhaustion: when no provider can fit a segment, the write fails
/// with OutOfSpace rather than hanging or corrupting, and small files
/// still fit elsewhere.
#[test]
fn out_of_space_is_clean() {
    let mut c = ClusterBuilder::new()
        .providers(2)
        .replication(1)
        .seed(64)
        .costs(CostModel::fast_test())
        .capacity(3_000_000) // 3 MB per provider
        .build();
    let big = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/big".into() },
        ClientOp::write_synth(0, 32 << 20), // cannot fit anywhere
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(120));
    let bs = c.client_stats(big).unwrap();
    assert!(bs.failed_ops > 0);
    assert!(
        matches!(
            bs.last_error,
            Some(sorrento::Error::OutOfSpace) | Some(sorrento::Error::Timeout)
        ),
        "{:?}",
        bs.last_error
    );
    // Small files still succeed.
    let small = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/small".into() },
        ClientOp::write_bytes(0, vec![9; 10_000]),
        ClientOp::Close,
        ClientOp::Open { path: "/small".into(), write: false },
        ClientOp::Read { offset: 0, len: 10_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let ss = c.client_stats(small).unwrap();
    assert_eq!(ss.failed_ops, 0, "{:?}", ss.last_error);
}

/// Shadow copies left by a crashed client expire and free their space
/// (§3.5's expiration timers).
#[test]
fn abandoned_shadows_expire() {
    let mut c = cluster(3, 1, 65);
    // A client that writes but never closes (then "crashes": the
    // workload simply ends).
    let zombie = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/zombie".into() },
        ClientOp::write_bytes(0, patterned(400_000, 5)),
        // no Close: the shadows are left dangling
    ]));
    c.run_for(Dur::secs(10));
    assert_eq!(c.client_stats(zombie).unwrap().failed_ops, 0);
    let before: u64 = c
        .provider_disk_usage()
        .iter()
        .map(|(_, used, _)| *used)
        .sum();
    assert!(before >= 400_000, "shadow bytes on disk: {before}");
    // fast_test shadow TTL is 30 s; the GC sweep runs on the location-GC
    // cadence (90 s).
    c.run_for(Dur::secs(200));
    let after: u64 = c
        .provider_disk_usage()
        .iter()
        .map(|(_, used, _)| *used)
        .sum();
    assert!(
        after < before / 4,
        "expired shadows not reclaimed: {before} -> {after}"
    );
}
