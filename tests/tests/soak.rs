//! Long-run soak test: a mixed fleet of clients (writers, readers,
//! appenders, deleters) runs for an hour of virtual time while providers
//! churn (crash, restart, join). At the end, every invariant must hold:
//! no unexpected client failures beyond the churn windows, full
//! replication degree, version-converged replicas, and byte-exact data.

use rand::Rng;
use sorrento::client::{ClientOp, OpResult, Workload};
use sorrento::cluster::ClusterBuilder;
use sorrento::costs::CostModel;
use sorrento::store::WritePayload;
use sorrento_sim::{Dur, SimTime};

/// What the workload knows about one of its files.
#[derive(Debug, Clone, PartialEq)]
enum Knowledge {
    /// Never created (or known unlinked).
    Absent,
    /// Exists, but the content is uncertain (an op failed mid-flight).
    Unknown,
    /// Exists with exactly this content.
    Content(Vec<u8>),
}

/// A mixed-behaviour client: cycles through create/write/read/verify and
/// occasional unlink on its own namespace, forever.
struct Mixed {
    tag: usize,
    step: u64,
    stage: u8,
    /// Last payload written per file index (for verification).
    written: Vec<Knowledge>,
    /// Verified reads and mismatches.
    verified: u64,
    mismatches: u64,
    failures_outside_churn: u64,
    failure_log: Vec<(SimTime, &'static str, sorrento::Error)>,
    churn_window: (SimTime, SimTime),
    /// Stop issuing new ops after this instant so the run ends with a
    /// quiet period for the final convergence checks.
    stop_after: SimTime,
    pending_verify: Option<usize>,
    /// Whether the current write cycle's open+write both succeeded (the
    /// close may only record the payload then).
    cycle_ok: bool,
}

impl Mixed {
    fn new(tag: usize, churn_window: (SimTime, SimTime), stop_after: SimTime) -> Mixed {
        Mixed {
            tag,
            step: 0,
            stage: 0,
            written: vec![Knowledge::Absent; 4],
            verified: 0,
            mismatches: 0,
            failures_outside_churn: 0,
            failure_log: Vec::new(),
            churn_window,
            stop_after,
            pending_verify: None,
            cycle_ok: false,
        }
    }

    fn path(&self, i: usize) -> String {
        format!("/soak-{}-{}", self.tag, i)
    }

    fn payload(&self, i: usize, step: u64) -> Vec<u8> {
        let n = 20_000 + (step as usize % 3) * 30_000;
        (0..n)
            .map(|k| (k as u8) ^ (self.tag as u8) ^ (step as u8) ^ (i as u8))
            .collect()
    }
}

impl Workload for Mixed {
    fn next_op(&mut self, _now: SimTime, rng: &mut rand::rngs::SmallRng) -> Option<ClientOp> {
        if _now >= self.stop_after && self.stage == 0 {
            return None; // quiesce between cycles
        }
        let i = (self.step as usize + self.tag) % self.written.len();
        let op = match self.stage {
            // Write cycle: (re)create or overwrite, then close.
            0 => {
                self.cycle_ok = true;
                if self.written[i] == Knowledge::Absent {
                    ClientOp::Create { path: self.path(i) }
                } else {
                    ClientOp::Open { path: self.path(i), write: true }
                }
            }
            1 => {
                let data = self.payload(i, self.step);
                ClientOp::Write { offset: 0, payload: WritePayload::Real(data.into()) }
            }
            2 => ClientOp::Close,
            // Read-verify cycle against a file we know the contents of.
            3 => {
                let candidates: Vec<usize> = self
                    .written
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| matches!(w, Knowledge::Content(_)))
                    .map(|(k, _)| k)
                    .collect();
                if candidates.is_empty() {
                    self.stage = 5;
                    return self.next_op(_now, rng);
                }
                let k = candidates[rng.gen_range(0..candidates.len())];
                self.pending_verify = Some(k);
                ClientOp::Open { path: self.path(k), write: false }
            }
            4 => {
                // The open may have failed (churn): skip the read+close.
                let Some(k) = self.pending_verify else {
                    self.stage = 6;
                    return self.next_op(_now, rng);
                };
                match &self.written[k] {
                    Knowledge::Content(data) => {
                        let len = data.len() as u64;
                        ClientOp::Read { offset: 0, len }
                    }
                    _ => {
                        // Knowledge was invalidated mid-cycle.
                        self.pending_verify = None;
                        ClientOp::Read { offset: 0, len: 1 }
                    }
                }
            }
            5 => ClientOp::Close,
            // Occasional unlink + think.
            6 => {
                if self.step % 7 == 3 && self.written[i] != Knowledge::Absent {
                    self.written[i] = Knowledge::Absent;
                    ClientOp::Unlink { path: self.path(i) }
                } else {
                    ClientOp::Think { dur: Dur::millis(rng.gen_range(50..400)) }
                }
            }
            _ => unreachable!(),
        };
        self.stage += 1;
        if self.stage > 6 {
            self.stage = 0;
            self.step += 1;
        }
        Some(op)
    }

    fn on_result(&mut self, op: &ClientOp, result: &OpResult, now: SimTime) {
        let in_churn = now >= self.churn_window.0 && now <= self.churn_window.1;
        match (op, &result.error) {
            // A successful close after a fully successful write cycle
            // commits the payload.
            (ClientOp::Close, None) if self.stage == 3 && self.cycle_ok => {
                let i = (self.step as usize + self.tag) % self.written.len();
                self.written[i] = Knowledge::Content(self.payload(i, self.step));
            }
            (ClientOp::Read { .. }, None) => {
                if let (Some(k), Some(data)) = (self.pending_verify, &result.data) {
                    if let Knowledge::Content(expect) = &self.written[k] {
                        self.verified += 1;
                        if data != expect {
                            self.mismatches += 1;
                            let first_bad =
                                data.iter().zip(expect.iter()).position(|(a, b)| a != b);
                            eprintln!(
                                "MISMATCH tag={} file={} t={now} got_len={} exp_len={} first_bad={:?} got[0..4]={:?} exp[0..4]={:?}",
                                self.tag,
                                self.path(k),
                                data.len(),
                                expect.len(),
                                first_bad,
                                &data[..4.min(data.len())],
                                &expect[..4.min(expect.len())],
                            );
                        }
                    }
                    self.pending_verify = None;
                }
            }
            // Create on a path that survived an earlier half-failed
            // cycle: recover by treating it as existing-unknown. This is
            // churn fallout, not an unexpected failure.
            (ClientOp::Create { .. }, Some(sorrento::Error::AlreadyExists)) => {
                self.cycle_ok = false;
                let i = (self.step as usize + self.tag) % self.written.len();
                self.written[i] = Knowledge::Unknown;
                self.pending_verify = None;
            }
            // Unlink of a path a half-failed cycle already removed.
            (ClientOp::Unlink { .. }, Some(sorrento::Error::NotFound)) => {
                self.cycle_ok = false;
                self.pending_verify = None;
            }
            (op, Some(e)) if !in_churn => {
                self.cycle_ok = false;
                self.failures_outside_churn += 1;
                self.failure_log.push((now, op.kind(), e.clone()));
                // Abandon knowledge of the touched file: its state is
                // uncertain now.
                let i = (self.step as usize + self.tag) % self.written.len();
                self.written[i] = Knowledge::Unknown;
                self.pending_verify = None;
            }
            (_, Some(_)) => {
                self.cycle_ok = false;
                let i = (self.step as usize + self.tag) % self.written.len();
                self.written[i] = Knowledge::Unknown;
                self.pending_verify = None;
            }
            _ => {}
        }
    }
}

#[test]
fn one_hour_mixed_soak_with_churn() {
    let mut c = ClusterBuilder::new()
        .providers(6)
        .replication(2)
        .seed(7777)
        .costs(CostModel::fast_test())
        .build();
    // Churn window: minute 20 to minute 32.
    let t0 = c.now();
    let churn = (t0 + Dur::minutes(20), t0 + Dur::minutes(33));
    // Clients stop at minute 50; the last 10 minutes are quiet so lazy
    // propagation can fully converge before the final checks.
    let stop = t0 + Dur::minutes(50);
    let clients: Vec<_> = (0..5)
        .map(|tag| c.add_client(Mixed::new(tag, churn, stop)))
        .collect();
    // Schedule churn: crash two providers at different times, restart
    // one, and add a brand-new node.
    let (v1, v2) = (c.providers()[1], c.providers()[4]);
    c.crash_provider_at(t0 + Dur::minutes(20), v1);
    c.restart_provider_at(t0 + Dur::minutes(24), v1);
    c.crash_provider_at(t0 + Dur::minutes(26), v2);
    c.add_provider_at(t0 + Dur::minutes(28), 72_000_000_000);
    // Run one hour of virtual time.
    c.run_for(Dur::minutes(60));
    let mut total_verified = 0;
    for (k, &id) in clients.iter().enumerate() {
        let m = c
            .sim
            .node_ref::<sorrento::client::SorrentoClient>(id)
            .and_then(|cl| cl.workload_ref::<Mixed>())
            .expect("workload");
        assert_eq!(m.mismatches, 0, "client {k} read corrupted data");
        // Lazy propagation means a version committed moments before a
        // crash can die with its only owner (§3.5: the older replicas
        // then "serve as backups"); that fallout can surface well after
        // the churn window when the file is next opened, and the
        // workload recovers by recreating it. It must stay *bounded* —
        // dozens of failures would mean the cluster never healed.
        assert!(
            m.failures_outside_churn <= 20,
            "client {k}: {} failures outside churn: {:?}",
            m.failures_outside_churn,
            m.failure_log
        );
        total_verified += m.verified;
        let stats = c.client_stats(id).unwrap();
        assert!(stats.completed_ops > 100, "client {k} barely ran");
    }
    assert!(total_verified > 100, "too few verified reads: {total_verified}");
    // After the churn settles, every surviving segment is fully
    // replicated and version-converged.
    for (seg, owners) in c.segment_ownership() {
        assert!(owners.len() >= 2, "{seg:?} under-replicated: {owners:?}");
        let max = owners.iter().map(|(_, v)| *v).max().unwrap();
        for (p, v) in owners {
            assert_eq!(v, max, "{seg:?} stale on {p:?}");
        }
    }
}
