//! Real-loopback metadata-plane drill: a 2-shard namespace with hot
//! standbys over actual TCP daemons. Kill one shard's primary, assert
//! the standby notices the stalled WAL shipments, promotes itself, and
//! serves correct reads — the game-day script from RUNBOOK.md, as a
//! test (and the backing check for `make ns-smoke`).

use std::net::TcpListener;
use std::time::Duration;

use sorrento::api::FsScript;
use sorrento::costs::CostModel;
use sorrento::nsmap::{shard_of_dir, ShardInfo};
use sorrento_json::Json;
use sorrento::locator::LocationScheme;
use sorrento::swim::MembershipMode;
use sorrento_net::config::{CtlConfig, DaemonConfig, PeerSpec, Role};
use sorrento_net::ctl;
use sorrento_net::daemon::{self, DaemonHandle};
use sorrento_sim::NodeId;

const DEADLINE: Duration = Duration::from_secs(60);
const NSHARDS: u32 = 2;

/// Node layout: 0..NSHARDS are shard primaries, NSHARDS..2*NSHARDS are
/// their standbys, the rest are providers.
fn spawn_sharded_cluster(providers: usize) -> (Vec<DaemonHandle>, CtlConfig) {
    let ns = NSHARDS as usize;
    let n = 2 * ns + providers;
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let all_peers: Vec<PeerSpec> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| PeerSpec {
            id: NodeId::from_index(i),
            addr: l.local_addr().unwrap().to_string(),
            machine: i as u32,
        })
        .collect();
    let ns_map: Vec<ShardInfo> = (0..ns)
        .map(|k| ShardInfo {
            primary: NodeId::from_index(k),
            standby: Some(NodeId::from_index(ns + k)),
        })
        .collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let (role, shard) = if i < ns {
                (Role::Namespace, i as u32)
            } else if i < 2 * ns {
                (Role::Standby, (i - ns) as u32)
            } else {
                (Role::Provider, 0)
            };
            let cfg = DaemonConfig {
                node_id: NodeId::from_index(i),
                role,
                listen: all_peers[i].addr.clone(),
                data_dir: None,
                seed: 500 + i as u64,
                capacity: 1 << 30,
                machine: i as u32,
                rack: i as u32,
                costs: CostModel::fast_test(),
                chaos: Default::default(),
                metrics_interval_ms: None,
                shard,
                ns_shards: NSHARDS,
                ns_map: ns_map.clone(),
                ns_checkpoint_batches: Some(8),
                membership: MembershipMode::Heartbeat,
                location: LocationScheme::Ring,
                peers: all_peers
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| p.clone())
                    .collect(),
            };
            daemon::spawn_with_listener(cfg, listener).expect("spawn daemon")
        })
        .collect();
    let ctl_cfg = CtlConfig {
        ctl_id: NodeId::from_index(1000),
        namespace: NodeId::from_index(0),
        seed: 7,
        replication: 1,
        costs: CostModel::fast_test(),
        write_chunk: None,
        write_window: 4,
        rpc_resends: 0,
        op_deadline_ms: None,
        ns_map,
        membership: MembershipMode::Heartbeat,
        location: LocationScheme::Ring,
        peers: all_peers,
    };
    (handles, ctl_cfg)
}

/// A root-level directory whose children live on shard `k`.
fn dir_on_shard(k: u32) -> String {
    (0..)
        .map(|i| format!("/d{i}"))
        .find(|d| shard_of_dir(d, NSHARDS) == k)
        .unwrap()
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 37 % 251) as u8).collect()
}

#[test]
fn sharded_namespace_fails_over_to_the_standby() {
    let (mut handles, cfg) = spawn_sharded_cluster(2);
    let d0 = dir_on_shard(0);
    let d1 = dir_on_shard(1);
    let data = payload(16 * 1024);

    // Seed state on both shards through the primaries.
    let mut fs = FsScript::new();
    fs.mkdir(&d0).unwrap();
    fs.mkdir(&d1).unwrap();
    for (d, name) in [(&d0, "a"), (&d0, "b"), (&d1, "c")] {
        let h = fs.create(format!("{d}/{name}")).unwrap();
        fs.write(h, 0, data.clone()).unwrap();
        fs.close(h).unwrap();
    }
    let out = ctl::run_script(&cfg, fs.into_ops(), 2, DEADLINE).expect("seed script");
    assert_eq!(out.stats.failed_ops, 0, "seed failed: {:?}", out.stats.last_error);

    // Cross-shard rename while both primaries are up.
    let mut fs = FsScript::new();
    fs.rename(format!("{d0}/b"), format!("{d1}/b2")).unwrap();
    fs.stat(format!("{d1}/b2")).unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 1, DEADLINE).expect("rename script");
    assert_eq!(out.stats.failed_ops, 0, "rename failed: {:?}", out.stats.last_error);

    // Give the WAL shipper a couple of intervals to drain, then kill
    // shard 0's primary the way a crash would (no clean shutdown).
    std::thread::sleep(Duration::from_millis(300));
    handles.remove(0).kill().expect("kill primary");

    // The standby promotes after its grace period; ops against shard 0
    // time out at the dead primary, flip to the standby, and succeed.
    let mut fs = FsScript::new();
    fs.stat(format!("{d0}/a")).unwrap();
    let h = fs.open(format!("{d0}/a"), false).unwrap();
    fs.read(h, 0, data.len() as u64).unwrap();
    fs.close(h).unwrap();
    fs.stat(format!("{d1}/c")).unwrap(); // untouched shard still serves
    let h = fs.create(format!("{d0}/post-failover")).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 2, DEADLINE).expect("failover script");
    assert_eq!(out.stats.failed_ops, 0, "post-failover ops failed: {:?}", out.stats.last_error);
    assert_eq!(out.stats.last_read.as_deref(), Some(&data[..]), "readback mismatch");

    // The promoted standby's snapshot says so: it serves shard 0, its
    // failover counter ticked, and the replayed-tail gauge is present.
    let sb = NodeId::from_index(NSHARDS as usize);
    let json = ctl::fetch_stats(&cfg, sb, DEADLINE).expect("standby stats");
    let snap = Json::parse(&json).expect("snapshot parses");
    assert_eq!(snap.get("shard").and_then(Json::as_u64), Some(0));
    let counter = |k: &str| {
        snap.get("counters").and_then(|c| c.get(k)).and_then(Json::as_u64).unwrap_or(0)
    };
    assert_eq!(counter("ns.failovers"), 1, "snapshot: {json}");
    let gauges = snap.get("gauges").expect("gauges section");
    assert!(
        gauges.get("ns0.failover_replayed").is_some(),
        "missing failover_replayed gauge: {json}"
    );

    for h in handles {
        h.stop().expect("clean shutdown");
    }
}
