//! Telemetry integration tests: op-span causal tracing across
//! client → namespace → providers, and determinism of the event stream.

use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::types::Error;
use sorrento_sim::Dur;

fn cluster(seed: u64) -> Cluster {
    ClusterBuilder::new()
        .providers(4)
        .replication(2)
        .seed(seed)
        .costs(CostModel::fast_test())
        .build()
}

/// Drive the two-writer conflict scenario of `concurrent_commits_conflict`
/// and return the cluster plus (winner, loser) client ids. The think
/// durations make the outcome deterministic: the 2 s thinker commits
/// first, the 5 s thinker loses the version check.
fn run_conflict(seed: u64) -> (Cluster, sorrento_sim::NodeId, sorrento_sim::NodeId) {
    let mut c = cluster(seed);
    let init = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/shared".into() },
        ClientOp::write_bytes(0, vec![1; 10_000]),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(init).unwrap().failed_ops, 0);
    let winner = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/shared".into(), write: true },
        ClientOp::write_bytes(0, vec![2; 10_000]),
        ClientOp::Think { dur: Dur::secs(2) },
        ClientOp::Close,
    ]));
    let loser = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/shared".into(), write: true },
        ClientOp::write_bytes(0, vec![3; 10_000]),
        ClientOp::Think { dur: Dur::secs(5) },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    (c, winner, loser)
}

/// `trace_op` on a failed op prints the op's full causal chain — client
/// request, the namespace version check that rejected it, and the
/// per-owner 2PC aborts — each line stamped with virtual time. The
/// winning commit's span shows the happy-path chain through per-owner
/// 2PC prepare/commit.
#[test]
fn trace_op_renders_causal_chain_of_failed_commit() {
    let (c, winner, loser) = run_conflict(31);
    let ws = c.client_stats(winner).unwrap().clone();
    let ls = c.client_stats(loser).unwrap().clone();
    assert_eq!(ws.failed_ops, 0, "{:?}", ws.last_error);
    assert_eq!(ls.failed_ops, 1, "{ls:?}");
    assert_eq!(ls.last_error, Some(Error::VersionConflict));

    // --- the failed op's chain ---
    let &(span, kind) = ls.failed_spans.first().expect("failed op recorded its span");
    assert_eq!(kind, "close");
    let trace = c.trace_op(span);
    println!("{trace}");
    // Client request in, version check rejected, shadows aborted on the
    // owners, op reported failed — in that causal order.
    let idx = |needle: &str| {
        trace
            .find(needle)
            .unwrap_or_else(|| panic!("`{needle}` missing from trace:\n{trace}"))
    };
    let start = idx("op.start");
    let check = idx("ns.version_check");
    let abort = idx("2pc.abort");
    let end = idx("op.end");
    assert!(trace.contains("ok=false"), "rejected check rendered:\n{trace}");
    // Abort is fire-and-forget, so the client reports the failure before
    // the owners record the shadow abort; everything else is in causal
    // order within the span.
    assert!(start < check && check < end && check < abort, "causal order:\n{trace}");
    // Each line carries the node's role; timestamps lead every line.
    assert!(trace.contains("  ns "), "namespace line present:\n{trace}");
    assert!(trace.contains("client#"), "client line present:\n{trace}");
    assert!(trace.contains("provider#"), "provider line present:\n{trace}");
    assert!(
        trace.lines().skip(1).all(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit())),
        "virtual timestamps lead every line:\n{trace}"
    );

    // --- the winning op's chain: full 2PC prepare/commit, per owner ---
    let happy = c.trace_op(ws.last_span);
    println!("{happy}");
    let hidx = |needle: &str| {
        happy
            .find(needle)
            .unwrap_or_else(|| panic!("`{needle}` missing from trace:\n{happy}"))
    };
    assert!(hidx("op.start") < hidx("ns.version_check"));
    assert!(hidx("ns.version_check") < hidx("2pc.prepare"));
    assert!(hidx("2pc.prepare") < hidx("2pc.commit"));
    // Every owner in the prepare set prepared and committed (updates go
    // through the primary owner; replicas catch up by lazy propagation).
    assert!(happy.matches("2pc.prepare").count() >= 1, "{happy}");
    assert!(happy.matches("2pc.commit").count() >= 1, "{happy}");
    assert!(happy.contains("seg.commit"), "{happy}");
    assert!(happy.contains("op.end") && happy.contains("ok=true"), "{happy}");
}

/// An unknown span renders a diagnostic instead of an empty string.
#[test]
fn trace_op_unknown_span() {
    let c = cluster(7);
    let out = c.trace_op(0xdead_beef);
    assert!(out.contains("no recorded events"), "{out}");
}

/// Same seed → byte-identical telemetry: the merged event stream (every
/// node, every event, virtual timestamps included) and the rendered
/// failure trace are reproducible run-to-run.
#[test]
fn event_stream_is_deterministic() {
    let render = |seed: u64| -> (String, String) {
        let (c, _, loser) = run_conflict(seed);
        let merged: String = c
            .sim
            .merged_events()
            .iter()
            .map(|(node, rec)| format!("{node} {rec}\n"))
            .collect();
        let &(span, _) = c
            .client_stats(loser)
            .unwrap()
            .failed_spans
            .first()
            .expect("loser failed");
        (merged, c.trace_op(span))
    };
    let (stream_a, trace_a) = render(97);
    let (stream_b, trace_b) = render(97);
    assert!(!stream_a.is_empty());
    assert_eq!(stream_a, stream_b, "same seed must replay identically");
    assert_eq!(trace_a, trace_b);
    // A different seed shifts timings — the stream must actually depend
    // on the run, not be a constant.
    let (stream_c, _) = render(98);
    assert_ne!(stream_a, stream_c);
}
