//! The observability plane, end to end against a real loopback
//! cluster: a write lands under 5% frame loss, and `fetch_trace` (the
//! library form of `sorrentoctl trace <span>`) pulls the op's causal
//! chain back out of every node's flight recorder — client send, the
//! namespace commit, and the provider-side write events, in wall-clock
//! order. A second test proves the flight recorder reaches disk on both
//! clean and crash-style exits.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use sorrento::api::FsScript;
use sorrento::costs::CostModel;
use sorrento::types::FileOptions;
use sorrento_json::Json;
use sorrento_net::chaos::ChaosConfig;
use sorrento::locator::LocationScheme;
use sorrento::swim::MembershipMode;
use sorrento_net::config::{CtlConfig, DaemonConfig, PeerSpec, Role};
use sorrento_net::ctl;
use sorrento_net::daemon::{self, DaemonHandle};
use sorrento_sim::NodeId;
use sorrento_tests::check_flight_dump;

const DEADLINE: Duration = Duration::from_secs(60);

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// Boot one namespace daemon (node 0) and `providers` provider daemons
/// on ephemeral loopback ports. `data_dirs[i]` gives provider `i + 1`
/// persistent storage (and with it a flight-dump destination).
fn spawn_cluster(
    providers: usize,
    data_dirs: &[Option<std::path::PathBuf>],
) -> (Vec<DaemonHandle>, CtlConfig) {
    let n = providers + 1;
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let all_peers: Vec<PeerSpec> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| PeerSpec {
            id: NodeId::from_index(i),
            addr: l.local_addr().unwrap().to_string(),
            machine: i as u32,
        })
        .collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let cfg = DaemonConfig {
                node_id: NodeId::from_index(i),
                role: if i == 0 { Role::Namespace } else { Role::Provider },
                listen: all_peers[i].addr.clone(),
                data_dir: if i == 0 { None } else { data_dirs.get(i - 1).cloned().flatten() },
                seed: 100 + i as u64,
                capacity: 1 << 30,
                machine: i as u32,
                rack: i as u32,
                costs: CostModel::fast_test(),
                chaos: Default::default(),
                metrics_interval_ms: None,
                shard: 0,
                ns_shards: 1,
                ns_map: Vec::new(),
                ns_checkpoint_batches: None,
                membership: MembershipMode::Heartbeat,
                location: LocationScheme::Ring,
                peers: all_peers
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| p.clone())
                    .collect(),
            };
            daemon::spawn_with_listener(cfg, listener).expect("spawn daemon")
        })
        .collect();
    let ctl_cfg = CtlConfig {
        ctl_id: NodeId::from_index(1000),
        namespace: NodeId::from_index(0),
        seed: 7,
        replication: 2,
        costs: CostModel::fast_test(),
        write_chunk: None,
        write_window: 4,
        rpc_resends: 2,
        op_deadline_ms: Some(20_000),
        ns_map: Vec::new(),
        membership: MembershipMode::Heartbeat,
        location: LocationScheme::Ring,
        peers: all_peers,
    };
    (handles, ctl_cfg)
}

/// One merged-chain event: (wall-clock ns, node index, event text).
type ChainEvent = (u64, usize, String);

/// Pull `span`'s events out of `node`'s flight recorder over the wire,
/// schema-check the reply, and return them as chain events.
fn trace_node(cfg: &CtlConfig, node: usize, span: u64) -> Vec<ChainEvent> {
    let json = ctl::fetch_trace(cfg, NodeId::from_index(node), span, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("trace from n{node}: {e}"));
    check_flight_dump(&json).unwrap_or_else(|e| panic!("n{node} trace reply: {e}"));
    let dump = Json::parse(&json).unwrap();
    dump.get("events")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|ev| {
            (
                ev.get("unix_ns").and_then(Json::as_u64).unwrap(),
                node,
                ev.get("text").and_then(Json::as_str).unwrap().to_owned(),
            )
        })
        .collect()
}

#[test]
fn trace_renders_cross_node_causal_chain_under_chaos() {
    let providers = 3;
    let (handles, cfg) = spawn_cluster(providers, &[]);

    // 5% frame loss on every frame every daemon sends; the client rides
    // it out with same-request resends and reply dedup.
    for i in 0..=providers {
        let chaos = ChaosConfig {
            seed: 0xC0FFEE ^ i as u64,
            drop_permille: 50,
            ..ChaosConfig::default()
        };
        ctl::set_chaos(&cfg, NodeId::from_index(i), &chaos, DEADLINE)
            .expect("install chaos rules");
    }

    // Write until an attempt converges cleanly — a fresh path per
    // attempt so a half-dead earlier try can't poison the next.
    let data = payload(96 * 1024);
    let deadline = Instant::now() + DEADLINE;
    let mut attempt = 0u32;
    let out = loop {
        attempt += 1;
        let path = format!("/obs-{attempt}"); // fresh path per attempt
        let mut fs = FsScript::new();
        let h = fs
            .create_with(
                &path,
                FileOptions { replication: 2, eager_commit: true, ..FileOptions::default() },
            )
            .unwrap();
        fs.write(h, 0, data.clone()).unwrap();
        fs.close(h).unwrap();
        let out = ctl::run_script(&cfg, fs.into_ops(), providers, Duration::from_secs(25))
            .expect("write under chaos: client did not finish");
        if out.stats.failed_ops == 0 {
            break out;
        }
        assert!(
            Instant::now() < deadline,
            "write never converged: {:?}",
            out.stats.last_error
        );
        std::thread::sleep(Duration::from_millis(200));
    };

    // Every issued op carries a span the CLI prints; the close op's
    // span covers the whole commit (Figure 6 steps 6–12).
    let write_span = out.records.iter().find(|r| r.kind == "write").expect("write record").span;
    let close_span = out.records.iter().find(|r| r.kind == "close").expect("close record").span;
    assert_ne!(write_span, 0, "write op got no span");
    assert_ne!(close_span, 0, "close op got no span");

    // The ctl session's own flight events are the client half of the
    // chain; `ScriptOutcome::epoch_unix_ns` puts them on the shared
    // wall-clock timeline.
    let client_chain = |span: u64| -> Vec<ChainEvent> {
        out.events
            .iter()
            .filter(|rec| rec.ev.span() == Some(span))
            .map(|rec| (out.epoch_unix_ns + rec.at.nanos(), 1000, rec.ev.to_string()))
            .collect()
    };

    // --- the write span: client send → provider shadow writes ---
    let mut chain: Vec<ChainEvent> = client_chain(write_span);
    for node in 0..=providers {
        chain.extend(trace_node(&cfg, node, write_span));
    }
    chain.sort();
    let client_send = chain
        .iter()
        .find(|(_, node, text)| *node == 1000 && text.starts_with("msg.send"))
        .expect("write chain has a client send");
    let shadow_writes: Vec<&ChainEvent> = chain
        .iter()
        .filter(|(_, node, text)| (1..=providers).contains(node) && text.starts_with("seg.create"))
        .collect();
    assert!(!shadow_writes.is_empty(), "write chain has no provider shadow create: {chain:?}");
    for w in &shadow_writes {
        assert!(client_send.0 <= w.0, "client send after provider write: {chain:?}");
    }

    // --- the close span: client send → ns commit → ≥r provider events ---
    let mut chain: Vec<ChainEvent> = client_chain(close_span);
    for node in 0..=providers {
        chain.extend(trace_node(&cfg, node, close_span));
    }
    chain.sort();
    let t_client_send = chain
        .iter()
        .find(|(_, node, text)| *node == 1000 && text.starts_with("msg.send"))
        .expect("close chain has a client send")
        .0;
    let t_ns_commit = chain
        .iter()
        .find(|(_, node, text)| *node == 0 && text.contains("commit_begin"))
        .expect("close chain has the namespace commit")
        .0;
    let provider_writes: Vec<&ChainEvent> = chain
        .iter()
        .filter(|(_, node, text)| {
            (1..=providers).contains(node)
                && (text.starts_with("2pc.") || text.starts_with("seg.commit"))
        })
        .collect();
    assert!(
        provider_writes.len() >= 2,
        "close chain has {} provider write events, wanted >= replication (2): {chain:?}",
        provider_writes.len()
    );
    // Causal order on the merged timeline: the client issued the commit
    // before the namespace saw it, and before any provider applied it.
    assert!(t_client_send <= t_ns_commit, "ns commit precedes client send: {chain:?}");
    for w in &provider_writes {
        assert!(t_client_send <= w.0, "provider write precedes client send: {chain:?}");
    }

    for h in handles {
        h.stop().expect("clean shutdown");
    }
}

#[test]
fn flight_dump_survives_clean_and_crash_exits() {
    let base = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("obs-flight");
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<std::path::PathBuf> = (1..=2).map(|i| base.join(format!("p{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }
    let (mut handles, cfg) =
        spawn_cluster(2, &[Some(dirs[0].clone()), Some(dirs[1].clone())]);

    let mut fs = FsScript::new();
    let h = fs.create("/box").unwrap();
    fs.write(h, 0, payload(4096)).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 2, DEADLINE).expect("write script");
    assert_eq!(out.stats.failed_ops, 0, "write failed: {:?}", out.stats.last_error);

    // Provider 2 dies abruptly (crash stand-in), provider 1 stops
    // cleanly. Both must leave a parseable black box.
    handles.pop().unwrap().kill().expect("abrupt kill");
    handles.pop().unwrap().stop().expect("clean shutdown");
    for (i, dir) in dirs.iter().enumerate() {
        let dump = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("flight_"))
            .unwrap_or_else(|| panic!("no flight_*.json in {}", dir.display()));
        let text = std::fs::read_to_string(dump.path()).unwrap();
        check_flight_dump(&text).unwrap_or_else(|e| panic!("p{} dump: {e}", i + 1));
        let j = Json::parse(&text).unwrap();
        assert_eq!(j.get("node").and_then(Json::as_u64), Some(i as u64 + 1));
        assert_eq!(j.get("role").and_then(Json::as_str), Some("provider"));
        let events = j.get("events").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty(), "p{} black box is empty", i + 1);
        // A provider that served a write must have seen protocol
        // traffic, not just its own heartbeats.
        assert!(
            events.iter().any(|ev| {
                ev.get("kind").and_then(Json::as_str).is_some_and(|k| k.starts_with("msg."))
            }),
            "p{} dump has no message events",
            i + 1
        );
    }

    for h in handles {
        h.stop().expect("clean shutdown");
    }
}
