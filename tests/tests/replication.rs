//! Replication integration tests: home-host-driven lazy propagation and
//! degree repair (§3.6), eager commitment, and recovery after failures.

use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::types::{FileOptions, Version};
use sorrento_sim::Dur;

fn cluster(providers: usize, replication: u32, seed: u64) -> Cluster {
    ClusterBuilder::new()
        .providers(providers)
        .replication(replication)
        .seed(seed)
        .costs(CostModel::fast_test())
        .build()
}

fn patterned(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(13) ^ seed).collect()
}

/// Every segment eventually reaches its replication degree through the
/// home hosts' repair path, with replicas on distinct providers.
#[test]
fn lazy_repair_reaches_degree() {
    let mut c = cluster(5, 3, 21);
    let id = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/r3".into() },
        ClientOp::write_bytes(0, patterned(300_000, 1)),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    assert_eq!(c.client_stats(id).unwrap().failed_ops, 0);
    let ownership = c.segment_ownership();
    assert!(!ownership.is_empty());
    for (seg, owners) in &ownership {
        assert_eq!(owners.len(), 3, "{seg:?} has owners {owners:?}");
        // All replicas at the same (latest) version.
        let versions: Vec<Version> = owners.iter().map(|(_, v)| *v).collect();
        assert!(versions.windows(2).all(|w| w[0] == w[1]), "{versions:?}");
        // Replica sites are distinct providers.
        let mut sites: Vec<_> = owners.iter().map(|(p, _)| *p).collect();
        sites.sort();
        sites.dedup();
        assert_eq!(sites.len(), 3);
    }
}

/// After a new commit, stale replicas are lazily synchronized to the new
/// version by the home host.
#[test]
fn stale_replicas_catch_up_after_commit() {
    let mut c = cluster(4, 2, 22);
    let id = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/f".into() },
        ClientOp::write_bytes(0, patterned(200_000, 1)),
        ClientOp::Close,
        // Let replication settle, then advance the version.
        ClientOp::Think { dur: Dur::secs(30) },
        ClientOp::Open { path: "/f".into(), write: true },
        ClientOp::write_bytes(0, patterned(200_000, 9)),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(120));
    assert_eq!(c.client_stats(id).unwrap().failed_ops, 0);
    for (seg, owners) in c.segment_ownership() {
        assert_eq!(owners.len(), 2, "{seg:?}: {owners:?}");
        let max = owners.iter().map(|(_, v)| *v).max().unwrap();
        for (p, v) in owners {
            assert_eq!(v, max, "stale replica on {p:?} for {seg:?}");
        }
    }
}

/// Eager (synchronous) commitment returns only after the replicas exist:
/// immediately after close, the degree is already met.
#[test]
fn eager_commit_replicates_synchronously() {
    let mut c = cluster(4, 1, 23);
    let options = FileOptions {
        replication: 2,
        eager_commit: true,
        ..FileOptions::default()
    };
    let id = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::CreateWith { path: "/eager".into(), options },
        ClientOp::write_bytes(0, patterned(150_000, 2)),
        ClientOp::Close,
    ]));
    // Run only until the client finishes, not long enough for lazy repair
    // scans to matter (fast_test scan = 1 s, but eager should not need it).
    loop {
        c.run_for(Dur::millis(200));
        if c.client_stats(id).unwrap().finished_at.is_some() {
            break;
        }
        assert!(c.now().as_secs_f64() < 200.0, "client never finished");
    }
    assert_eq!(c.client_stats(id).unwrap().failed_ops, 0);
    for (seg, owners) in c.segment_ownership() {
        assert!(owners.len() >= 2, "{seg:?} under-replicated: {owners:?}");
    }
}

/// Losing a provider must re-create the lost replicas elsewhere (the
/// Figure 13 recovery path) while reads keep succeeding.
#[test]
fn provider_failure_restores_replication_degree() {
    let mut c = cluster(5, 2, 24);
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/a".into() },
        ClientOp::write_bytes(0, patterned(400_000, 3)),
        ClientOp::Close,
        ClientOp::Create { path: "/b".into() },
        ClientOp::write_bytes(0, patterned(400_000, 4)),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60)); // fully replicated now
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0);
    let before = c.segment_ownership();
    for owners in before.values() {
        assert_eq!(owners.len(), 2);
    }
    // Kill the provider holding the most segments.
    let victim = {
        let mut counts = std::collections::HashMap::new();
        for owners in before.values() {
            for (p, _) in owners {
                *counts.entry(*p).or_insert(0usize) += 1;
            }
        }
        *counts.iter().max_by_key(|(_, n)| **n).unwrap().0
    };
    c.crash_provider_at(c.now(), victim);
    // Reads during the outage must still succeed (other replica serves).
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/a".into(), write: false },
        ClientOp::Read { offset: 0, len: 400_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(90));
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0, "read during outage failed: {:?}", rs.last_error);
    assert_eq!(rs.last_read.as_deref(), Some(&patterned(400_000, 3)[..]));
    // Degree restored on the survivors.
    for (seg, owners) in c.segment_ownership() {
        assert!(owners.len() >= 2, "{seg:?} not re-replicated: {owners:?}");
        assert!(owners.iter().all(|(p, _)| *p != victim));
    }
}

/// A provider that restarts with stale on-disk data is brought back up to
/// date (the §2.2 "repair and reconnect" scenario: the system determines
/// what data are current and what are outdated).
#[test]
fn restarted_provider_with_stale_data_syncs() {
    let mut c = cluster(4, 2, 25);
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/f".into() },
        ClientOp::write_bytes(0, patterned(250_000, 5)),
        ClientOp::Close,
        // Crash window, then a new version while the victim is down.
        ClientOp::Think { dur: Dur::secs(40) },
        ClientOp::Open { path: "/f".into(), write: true },
        ClientOp::write_bytes(1000, patterned(250_000, 6)),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30)); // replicated at v1
    let before = c.segment_ownership();
    let victim = before.values().next().unwrap()[0].0;
    let crash_at = c.now();
    c.crash_provider_at(crash_at, victim);
    c.run_for(Dur::secs(60)); // v2 committed while victim down
    c.restart_provider_at(c.now(), victim);
    c.run_for(Dur::secs(120));
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0);
    // Every replica everywhere converged to the same latest version.
    for (seg, owners) in c.segment_ownership() {
        let max = owners.iter().map(|(_, v)| *v).max().unwrap();
        for (p, v) in owners {
            assert_eq!(v, max, "{seg:?} stale on {p:?}");
        }
    }
    // And the data is correct when read back.
    let mut expect = patterned(250_000, 5);
    let tail = patterned(250_000, 6);
    expect.resize(1000 + 250_000, 0);
    expect[1000..].copy_from_slice(&tail);
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/f".into(), write: false },
        ClientOp::Read { offset: 0, len: expect.len() as u64 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0);
    assert_eq!(rs.last_read.as_deref(), Some(&expect[..]));
}

/// Replication degree 1 means exactly one owner per segment — the repair
/// path must not over-replicate.
#[test]
fn degree_one_never_over_replicates() {
    let mut c = cluster(4, 1, 26);
    let id = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/single".into() },
        ClientOp::write_bytes(0, patterned(300_000, 7)),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    assert_eq!(c.client_stats(id).unwrap().failed_ops, 0);
    for (seg, owners) in c.segment_ownership() {
        assert_eq!(owners.len(), 1, "{seg:?} over-replicated: {owners:?}");
    }
}

/// Rack-aware replica placement (the §3.7.2 planned GoogleFS-style
/// extension): with providers spread over racks, repair places replicas
/// on distinct racks whenever possible.
#[test]
fn replicas_spread_across_racks() {
    let mut c = ClusterBuilder::new()
        .providers(6)
        .replication(2)
        .racks(3) // providers 0..6 → racks 0,1,2,0,1,2
        .seed(27)
        .costs(CostModel::fast_test())
        .build();
    let mut ops = Vec::new();
    for i in 0..10 {
        ops.push(ClientOp::Create { path: format!("/r{i}") });
        ops.push(ClientOp::write_bytes(0, patterned(150_000, i as u8)));
        ops.push(ClientOp::Close);
    }
    let w = c.add_client(ScriptedWorkload::new(ops));
    c.run_for(Dur::secs(90));
    assert_eq!(c.client_stats(w).unwrap().failed_ops, 0);
    let rack_of = |p: sorrento_sim::NodeId| -> u32 {
        let idx = c.providers().iter().position(|&q| q == p).unwrap();
        (idx % 3) as u32
    };
    let mut cross_rack = 0;
    let mut total = 0;
    for (seg, owners) in c.segment_ownership() {
        assert_eq!(owners.len(), 2, "{seg:?}: {owners:?}");
        total += 1;
        let r0 = rack_of(owners[0].0);
        let r1 = rack_of(owners[1].0);
        if r0 != r1 {
            cross_rack += 1;
        }
    }
    // The original (first) replica is placed without rack knowledge, but
    // every repair-created second replica must land on a different rack.
    assert_eq!(
        cross_rack, total,
        "{cross_rack}/{total} segment pairs span racks"
    );
}
