//! Self-organization integration tests: node additions rebalance storage
//! through migration (§3.7.1), the locality-driven policy co-locates data
//! with its consumer (§3.7.2), and the namespace server recovers from a
//! crash via its WAL (§3.1).

use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::types::{FileOptions, PlacementPolicy};
use sorrento_sim::Dur;

fn patterned(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(17) ^ seed).collect()
}

/// Start with one provider holding everything; add eleven empty
/// providers. (With one extreme outlier among n nodes, `max > mean + 3σ`
/// requires `n ≥ 11` — the paper's trigger is deliberately conservative.)
/// The full node is then in the top 10% and above mean + 3σ, so the
/// migration daemon must move cold segments onto the newcomers.
#[test]
fn node_addition_triggers_storage_rebalancing() {
    let mut c = ClusterBuilder::new()
        .providers(1)
        .seed(41)
        .costs(CostModel::fast_test())
        .capacity(200_000_000) // small disk so utilization is visible
        .build();
    let mut ops = Vec::new();
    for i in 0..12 {
        ops.push(ClientOp::Create { path: format!("/f{i}") });
        ops.push(ClientOp::write_synth(0, 8_000_000));
        ops.push(ClientOp::Close);
    }
    let writer = c.add_client(ScriptedWorkload::new(ops));
    c.run_for(Dur::secs(120));
    assert_eq!(
        c.client_stats(writer).unwrap().failed_ops,
        0,
        "{:?}",
        c.client_stats(writer).unwrap().last_error
    );
    let only = c.providers()[0];
    let before = c.sim.disk_used(only);
    assert!(before >= 96_000_000, "expected ~96 MB on the node, got {before}");
    // Eleven empty providers join.
    for _ in 0..11 {
        c.add_provider_at(c.now(), 200_000_000);
    }
    // Give the migration daemon (5 s cadence in fast_test, one transfer
    // at a time) time to work.
    c.run_for(Dur::secs(600));
    let after = c.sim.disk_used(only);
    let moved = c.metrics().counter("sorrento.migrations_done");
    assert!(moved > 0, "no migrations happened");
    assert!(
        after < before,
        "storage never left the full node: {before} -> {after}"
    );
    // And the data stays readable from wherever it landed.
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/f0".into(), write: false },
        ClientOp::Read { offset: 0, len: 8_000_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0, "{:?}", rs.last_error);
    assert_eq!(rs.bytes_read, 8_000_000);
}

/// Locality-driven placement: a client co-located with provider 1 hammers
/// a file whose segments start elsewhere; the segments must migrate to
/// provider 1's machine.
#[test]
fn locality_policy_migrates_toward_consumer() {
    let mut c = ClusterBuilder::new()
        .providers(2)
        .seed(42)
        .costs(CostModel::fast_test())
        .build();
    let p1 = c.providers()[1];
    let options = FileOptions {
        placement: PlacementPolicy::LocalityDriven { threshold: 0.6 },
        ..FileOptions::default()
    };
    // Writer (remote) creates the dataset.
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::CreateWith { path: "/part".into(), options },
        ClientOp::write_synth(0, 4_000_000),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0);
    // Reader co-located with provider 1 reads the file repeatedly.
    let mut ops = vec![ClientOp::Open { path: "/part".into(), write: false }];
    for _ in 0..60 {
        ops.push(ClientOp::Read { offset: 0, len: 4_000_000 });
        ops.push(ClientOp::Think { dur: Dur::secs(2) });
    }
    ops.push(ClientOp::Close);
    let reader = c.add_client_on_provider(ScriptedWorkload::new(ops), 1);
    c.run_for(Dur::secs(300));
    assert_eq!(
        c.client_stats(reader).unwrap().failed_ops,
        0,
        "{:?}",
        c.client_stats(reader).unwrap().last_error
    );
    // All data segments ended up on provider 1 (the consumer's machine).
    let ownership = c.segment_ownership();
    let data_bytes_on_p1 = c.sim.disk_used(p1);
    assert!(
        c.metrics().counter("sorrento.migrations_done") > 0,
        "locality migration never ran; ownership: {ownership:?}"
    );
    assert!(
        data_bytes_on_p1 >= 4_000_000,
        "data did not migrate to the consumer: {data_bytes_on_p1}"
    );
}

/// The namespace server crashes and restarts: entries committed before
/// the crash are recovered from the WAL, and clients resume.
#[test]
fn namespace_crash_recovery() {
    let mut c = ClusterBuilder::new()
        .providers(3)
        .seed(43)
        .costs(CostModel::fast_test())
        .build();
    let data = patterned(100_000, 9);
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/durable".into() },
        ClientOp::write_bytes(0, data.clone()),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0);
    // Crash the namespace server for 5 seconds.
    let ns = c.namespace();
    let t = c.now();
    c.sim.crash_at(t, ns);
    c.sim.restart_at(t + Dur::secs(5), ns);
    c.run_for(Dur::secs(10));
    // Recovery replayed the WAL.
    let recovered = c.namespace_ref().unwrap().recovered_batches;
    assert!(recovered > 0, "no WAL batches replayed");
    // The entry (with its committed version) survived.
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/durable".into(), write: false },
        ClientOp::Read { offset: 0, len: 100_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0, "{:?}", rs.last_error);
    assert_eq!(rs.last_read.as_deref(), Some(&data[..]));
}

/// Client operations issued while the namespace server is down fail by
/// timeout, and later operations succeed once it returns.
#[test]
fn client_survives_namespace_outage() {
    let mut c = ClusterBuilder::new()
        .providers(3)
        .seed(44)
        .costs(CostModel::fast_test())
        .build();
    let ns = c.namespace();
    let t = c.now();
    c.sim.crash_at(t + Dur::secs(1), ns);
    c.sim.restart_at(t + Dur::secs(30), ns);
    let client = c.add_client(ScriptedWorkload::new(vec![
        // Issued during the outage: fails after retries.
        ClientOp::Think { dur: Dur::secs(2) },
        ClientOp::Create { path: "/during".into() },
        // Wait out the outage, then work normally.
        ClientOp::Think { dur: Dur::secs(60) },
        ClientOp::Create { path: "/after".into() },
        ClientOp::write_bytes(0, vec![5; 1000]),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(200));
    let s = c.client_stats(client).unwrap();
    assert_eq!(s.failed_ops, 1);
    assert_eq!(s.last_error, Some(sorrento::Error::Timeout));
    // `/after` committed fine.
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Stat { path: "/after".into() },
    ]));
    c.run_for(Dur::secs(20));
    assert_eq!(c.client_stats(reader).unwrap().failed_ops, 0);
}

/// The multicast backup query (§3.4.2) finds a segment when the location
/// tables cannot: crash-restart a provider so its location table (soft
/// state) is empty, then read immediately, before refreshes repopulate.
#[test]
fn backup_query_rescues_lost_location_state() {
    let mut c: Cluster = ClusterBuilder::new()
        .providers(3)
        .seed(45)
        .costs(CostModel::fast_test())
        .build();
    let data = patterned(50_000, 3);
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/hidden".into() },
        ClientOp::write_bytes(0, data.clone()),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(20));
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0);
    // Simultaneously crash-restart all providers: every location table
    // (soft state) is wiped, but the stores (disk) survive.
    let t = c.now();
    for &p in &c.providers().to_vec() {
        c.sim.crash_at(t, p);
        c.sim.restart_at(t + Dur::millis(100), p);
    }
    c.run_for(Dur::secs(2)); // well before the periodic refresh cycle
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/hidden".into(), write: false },
        ClientOp::Read { offset: 0, len: 50_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(120));
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0, "{:?}", rs.last_error);
    assert_eq!(rs.last_read.as_deref(), Some(&data[..]));
}
