//! Property tests for the binary wire format in `sorrento-net`.
//!
//! `Msg` does not implement `PartialEq` (it carries floats and big
//! blobs), so roundtripping is checked byte-exactly: encode, decode,
//! re-encode, and require the two byte strings to match. Corruption
//! properties assert the decoder returns a typed [`FrameError`] — never
//! panics — for every truncation and for bit flips anywhere in the
//! header or payload.

use proptest::prelude::*;
use proptest::TestRng;
use rand::{Rng, SeedableRng};
use sorrento::membership::Heartbeat;
use sorrento::proto::{FileEntry, Msg, ReadReply, Tick};
use sorrento::store::{ReplicaImage, SegMeta, WritePayload};
use sorrento::types::{
    EcParams, Error, FileId, FileOptions, Organization, PlacementPolicy, SegId, Version,
};
use sorrento_net::frame::{
    decode_frame, decode_image_bytes, encode_hello, encode_image_bytes, encode_msg,
    encode_msg_into, reference_encode_msg, Frame, FrameError, StreamDecoder, HEADER_LEN,
};
use sorrento_net::pool::BufPool;
use sorrento_sim::NodeId;

/// Number of `Msg` variants; every tag below this is generated.
const MSG_VARIANTS: u8 = 64;

fn arb_u128(rng: &mut TestRng) -> u128 {
    ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128
}

fn arb_f64(rng: &mut TestRng) -> f64 {
    // Any bit pattern, NaNs included: the wire carries raw IEEE bits.
    f64::from_bits(rng.gen())
}

fn arb_node(rng: &mut TestRng) -> NodeId {
    NodeId::from_index(rng.gen_range(0..4096usize))
}

fn arb_string(rng: &mut TestRng) -> String {
    let n = rng.gen_range(0..24usize);
    (0..n).map(|_| char::from(rng.gen_range(32u8..127))).collect()
}

fn arb_bytes(rng: &mut TestRng) -> Vec<u8> {
    let n = rng.gen_range(0..48usize);
    (0..n).map(|_| rng.gen()).collect()
}

fn arb_error(rng: &mut TestRng) -> Error {
    match rng.gen_range(0..13u8) {
        0 => Error::NotFound,
        1 => Error::AlreadyExists,
        2 => Error::VersionConflict,
        3 => Error::NoSuchSegment,
        4 => Error::Timeout,
        5 => Error::OutOfSpace,
        6 => Error::LeaseHeld,
        7 => Error::InvalidMode,
        8 => Error::NotADirectory,
        9 => Error::NotEmpty,
        10 => Error::ShadowExpired,
        11 => Error::Unavailable,
        _ => Error::DeadlineExceeded,
    }
}

fn arb_result<T>(rng: &mut TestRng, f: impl FnOnce(&mut TestRng) -> T) -> Result<T, Error> {
    if rng.gen() {
        Ok(f(rng))
    } else {
        Err(arb_error(rng))
    }
}

fn arb_organization(rng: &mut TestRng) -> Organization {
    match rng.gen_range(0..3u8) {
        0 => Organization::Linear,
        1 => Organization::Striped { stripes: rng.gen(), max_size: rng.gen() },
        _ => Organization::Hybrid { group_stripes: rng.gen() },
    }
}

fn arb_placement(rng: &mut TestRng) -> PlacementPolicy {
    match rng.gen_range(0..3u8) {
        0 => PlacementPolicy::Random,
        1 => PlacementPolicy::LoadAware,
        _ => PlacementPolicy::LocalityDriven { threshold: arb_f64(rng) },
    }
}

fn arb_ec(rng: &mut TestRng) -> Option<EcParams> {
    if rng.gen() {
        Some(EcParams { k: rng.gen(), m: rng.gen() })
    } else {
        None
    }
}

fn arb_options(rng: &mut TestRng) -> FileOptions {
    FileOptions {
        replication: rng.gen(),
        alpha: arb_f64(rng),
        organization: arb_organization(rng),
        placement: arb_placement(rng),
        versioning_off: rng.gen(),
        eager_commit: rng.gen(),
        ec: arb_ec(rng),
    }
}

fn arb_entry(rng: &mut TestRng) -> FileEntry {
    FileEntry {
        file: FileId(arb_u128(rng)),
        version: Version(rng.gen()),
        size: rng.gen(),
        is_dir: rng.gen(),
        created_ns: rng.gen(),
        modified_ns: rng.gen(),
        options: arb_options(rng),
    }
}

fn arb_owners(rng: &mut TestRng) -> Vec<(NodeId, Version)> {
    let n = rng.gen_range(0..5usize);
    (0..n).map(|_| (arb_node(rng), Version(rng.gen()))).collect()
}

fn arb_reply(rng: &mut TestRng) -> ReadReply {
    match rng.gen_range(0..3u8) {
        0 => ReadReply::Data {
            len: rng.gen(),
            data: if rng.gen() { Some(arb_bytes(rng).into()) } else { None },
            version: Version(rng.gen()),
        },
        1 => ReadReply::Redirect(arb_owners(rng)),
        _ => ReadReply::Err(arb_error(rng)),
    }
}

fn arb_payload(rng: &mut TestRng) -> WritePayload {
    if rng.gen() {
        WritePayload::Real(arb_bytes(rng).into())
    } else {
        WritePayload::Synthetic { len: rng.gen() }
    }
}

fn arb_meta(rng: &mut TestRng) -> SegMeta {
    SegMeta {
        replication: rng.gen(),
        alpha: arb_f64(rng),
        policy: arb_placement(rng),
        synthetic: rng.gen(),
        ec: if rng.gen() { Some((rng.gen(), rng.gen())) } else { None },
    }
}

fn arb_image(rng: &mut TestRng) -> ReplicaImage {
    ReplicaImage {
        seg: SegId(arb_u128(rng)),
        version: Version(rng.gen()),
        len: rng.gen(),
        data: if rng.gen() { Some(arb_bytes(rng).into()) } else { None },
        meta: arb_meta(rng),
    }
}

fn arb_tick(rng: &mut TestRng) -> Tick {
    match rng.gen_range(0..20u8) {
        0 => Tick::Heartbeat,
        1 => Tick::LocationRefresh,
        2 => Tick::JoinRefresh(arb_node(rng)),
        3 => Tick::Gc,
        4 => Tick::RepairScan,
        5 => Tick::Migration,
        6 => Tick::MigrationContinue,
        7 => Tick::RpcTimeout(rng.gen()),
        8 => Tick::BackupDeadline(rng.gen()),
        9 => Tick::Membership,
        10 => Tick::NextOp,
        11 => Tick::AppendRetry,
        12 => Tick::CommitBeginRetry,
        13 => Tick::LeaseSweep,
        14 => Tick::OpDeadline(rng.gen()),
        15 => Tick::RpcResend(rng.gen()),
        16 => Tick::NsShip,
        17 => Tick::StandbyCheck,
        18 => Tick::ShardMapRefresh,
        _ => Tick::XShardTimeout(rng.gen()),
    }
}

fn arb_shadow_items(rng: &mut TestRng) -> Vec<(u64, Version)> {
    let n = rng.gen_range(0..5usize);
    (0..n).map(|_| (rng.gen(), Version(rng.gen()))).collect()
}

/// A random instance of the `Msg` variant with the given wire tag.
fn arb_msg(tag: u8, rng: &mut TestRng) -> Msg {
    match tag {
        0 => Msg::Tick(arb_tick(rng)),
        1 => Msg::Heartbeat(Heartbeat {
            load: arb_f64(rng),
            available: rng.gen(),
            capacity: rng.gen(),
            machine: rng.gen(),
            rack: rng.gen(),
        }),
        2 => Msg::NsLookup { req: rng.gen(), path: arb_string(rng) },
        3 => Msg::NsLookupR { req: rng.gen(), result: arb_result(rng, arb_entry) },
        4 => Msg::NsCreate {
            req: rng.gen(),
            path: arb_string(rng),
            file: FileId(arb_u128(rng)),
            options: arb_options(rng),
        },
        5 => Msg::NsCreateR { req: rng.gen(), result: arb_result(rng, arb_entry) },
        6 => Msg::NsMkdir { req: rng.gen(), path: arb_string(rng) },
        7 => Msg::NsMkdirR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        8 => Msg::NsRemove { req: rng.gen(), path: arb_string(rng) },
        9 => Msg::NsRemoveR { req: rng.gen(), result: arb_result(rng, arb_entry) },
        10 => Msg::NsList { req: rng.gen(), path: arb_string(rng) },
        11 => Msg::NsListR {
            req: rng.gen(),
            result: arb_result(rng, |rng| {
                let n = rng.gen_range(0..4usize);
                (0..n).map(|_| arb_string(rng)).collect()
            }),
        },
        12 => Msg::NsCommitBegin {
            req: rng.gen(),
            span: rng.gen(),
            path: arb_string(rng),
            base: Version(rng.gen()),
        },
        13 => Msg::NsCommitBeginR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        14 => Msg::NsCommitEnd {
            req: rng.gen(),
            span: rng.gen(),
            path: arb_string(rng),
            commit: rng.gen(),
            new_version: Version(rng.gen()),
            new_size: rng.gen(),
        },
        15 => Msg::NsCommitEndR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        16 => Msg::LocQuery { req: rng.gen(), seg: SegId(arb_u128(rng)) },
        17 => Msg::LocQueryR {
            req: rng.gen(),
            seg: SegId(arb_u128(rng)),
            owners: arb_owners(rng),
        },
        18 => Msg::LocUpsert {
            seg: SegId(arb_u128(rng)),
            owner: arb_node(rng),
            version: Version(rng.gen()),
            replication: rng.gen(),
            bytes: rng.gen(),
            deleted: rng.gen(),
        },
        19 => Msg::LocRefresh {
            owner: arb_node(rng),
            entries: {
                let n = rng.gen_range(0..4usize);
                (0..n)
                    .map(|_| (SegId(arb_u128(rng)), Version(rng.gen()), rng.gen(), rng.gen()))
                    .collect()
            },
        },
        20 => Msg::BackupQuery { req: rng.gen(), seg: SegId(arb_u128(rng)) },
        21 => Msg::BackupQueryR {
            req: rng.gen(),
            seg: SegId(arb_u128(rng)),
            version: Version(rng.gen()),
        },
        22 => Msg::ReadSeg {
            req: rng.gen(),
            seg: SegId(arb_u128(rng)),
            offset: rng.gen(),
            len: rng.gen(),
            min_version: if rng.gen() { Some(Version(rng.gen())) } else { None },
            allow_redirect: rng.gen(),
        },
        23 => Msg::ReadSegR { req: rng.gen(), reply: arb_reply(rng) },
        24 => Msg::CreateShadow {
            req: rng.gen(),
            span: rng.gen(),
            seg: SegId(arb_u128(rng)),
            base: if rng.gen() { Some(Version(rng.gen())) } else { None },
            meta: arb_meta(rng),
        },
        25 => Msg::CreateShadowR { req: rng.gen(), result: arb_result(rng, |rng| rng.gen()) },
        26 => Msg::WriteShadow {
            req: rng.gen(),
            shadow: rng.gen(),
            offset: rng.gen(),
            payload: arb_payload(rng),
            truncate: rng.gen(),
        },
        27 => Msg::WriteShadowR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        28 => Msg::ReadShadow {
            req: rng.gen(),
            shadow: rng.gen(),
            offset: rng.gen(),
            len: rng.gen(),
        },
        29 => Msg::ReadShadowR { req: rng.gen(), reply: arb_reply(rng) },
        30 => Msg::RenewShadow { shadow: rng.gen() },
        31 => Msg::Prepare { req: rng.gen(), span: rng.gen(), items: arb_shadow_items(rng) },
        32 => Msg::PrepareR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        33 => Msg::Commit { req: rng.gen(), span: rng.gen(), items: arb_shadow_items(rng) },
        34 => Msg::CommitR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        35 => Msg::Abort {
            span: rng.gen(),
            items: {
                let n = rng.gen_range(0..5usize);
                (0..n).map(|_| rng.gen()).collect()
            },
        },
        36 => Msg::DirectWrite {
            req: rng.gen(),
            seg: SegId(arb_u128(rng)),
            offset: rng.gen(),
            payload: arb_payload(rng),
            meta: arb_meta(rng),
        },
        37 => Msg::DirectWriteR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        38 => Msg::DeleteSeg { req: rng.gen(), seg: SegId(arb_u128(rng)) },
        39 => Msg::DeleteSegR { req: rng.gen(), existed: rng.gen() },
        40 => Msg::FetchSeg { req: rng.gen(), seg: SegId(arb_u128(rng)) },
        41 => Msg::FetchSegR {
            req: rng.gen(),
            result: arb_result(rng, |rng| Box::new(arb_image(rng))),
        },
        42 => Msg::SyncRequest {
            req: rng.gen(),
            seg: SegId(arb_u128(rng)),
            source: arb_node(rng),
            bytes_hint: rng.gen(),
        },
        43 => Msg::SyncDone {
            req: rng.gen(),
            seg: SegId(arb_u128(rng)),
            version: Version(rng.gen()),
            result: arb_result(rng, |_| ()),
        },
        44 => Msg::MigrateTo {
            seg: SegId(arb_u128(rng)),
            source: arb_node(rng),
            bytes_hint: rng.gen(),
        },
        45 => Msg::MigrateDone { seg: SegId(arb_u128(rng)), ok: rng.gen() },
        46 => Msg::StatsQuery { req: rng.gen() },
        47 => Msg::StatsR { req: rng.gen(), json: arb_string(rng) },
        48 => Msg::ChaosCtl {
            req: rng.gen(),
            seed: rng.gen(),
            drop_permille: rng.gen(),
            dup_permille: rng.gen(),
            delay_permille: rng.gen(),
            delay_us: rng.gen(),
            partition: {
                let n = rng.gen_range(0..5usize);
                (0..n).map(|_| arb_node(rng)).collect()
            },
        },
        49 => Msg::ChaosCtlR { req: rng.gen() },
        50 => Msg::TraceQuery { req: rng.gen(), span: rng.gen() },
        51 => Msg::TraceR { req: rng.gen(), json: arb_string(rng) },
        52 => Msg::EcInstall { req: rng.gen(), image: Box::new(arb_image(rng)) },
        53 => Msg::EcInstallR {
            req: rng.gen(),
            seg: SegId(arb_u128(rng)),
            result: arb_result(rng, |_| ()),
        },
        54 => Msg::NsRename { req: rng.gen(), src: arb_string(rng), dst: arb_string(rng) },
        55 => Msg::NsRenameR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        56 => Msg::NsShardInstall {
            req: rng.gen(),
            path: arb_string(rng),
            entry: arb_entry(rng),
            xfer: rng.gen(),
        },
        57 => Msg::NsShardInstallR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        58 => Msg::NsShardDrop {
            req: rng.gen(),
            path: arb_string(rng),
            check_empty: rng.gen(),
        },
        59 => Msg::NsShardDropR { req: rng.gen(), result: arb_result(rng, |_| ()) },
        60 => Msg::ShardMapQuery { req: rng.gen() },
        61 => Msg::ShardMapR {
            req: rng.gen(),
            rows: {
                let n = rng.gen_range(0..5usize);
                (0..n)
                    .map(|i| {
                        let standby = if rng.gen() { Some(arb_node(rng)) } else { None };
                        (i as u32, arb_node(rng), standby)
                    })
                    .collect()
            },
        },
        62 => Msg::NsWalShip {
            shard: rng.gen(),
            seq: rng.gen(),
            ckpt: if rng.gen() { Some(arb_bytes(rng).into()) } else { None },
            recs: {
                let n = rng.gen_range(0..4usize);
                (0..n).map(|_| arb_bytes(rng).into()).collect()
            },
        },
        63 => Msg::NsCatchup { shard: rng.gen(), have_seq: rng.gen() },
        _ => unreachable!("tag out of range"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_msg_variant_roundtrips_byte_exactly(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        for tag in 0..MSG_VARIANTS {
            let msg = arb_msg(tag, &mut rng);
            let sender = arb_node(&mut rng);
            let bytes = encode_msg(sender, &msg);
            // The single-pass streaming-CRC encoder must match the
            // retired two-pass encoder byte for byte.
            prop_assert_eq!(
                &bytes, &reference_encode_msg(sender, &msg),
                "tag {} single-pass encode differs from reference", tag
            );
            let (from, frame) =
                decode_frame(&bytes).unwrap_or_else(|e| panic!("tag {tag}: decode failed: {e}"));
            prop_assert_eq!(from, sender);
            let Frame::Msg(decoded) = frame else {
                panic!("tag {tag}: decoded as a Hello frame");
            };
            prop_assert_eq!(encode_msg(sender, &decoded), bytes, "tag {} re-encode differs", tag);
        }
    }

    #[test]
    fn pooled_encode_is_identical_to_fresh_encode(seed in any::<u64>()) {
        // One reused pooled buffer cycled through every variant: stale
        // capacity or leftover bytes from the previous frame must never
        // leak into the next one.
        let mut rng = TestRng::seed_from_u64(seed);
        let pool = BufPool::new();
        for tag in 0..MSG_VARIANTS {
            let msg = arb_msg(tag, &mut rng);
            let sender = arb_node(&mut rng);
            let mut buf = pool.check_out();
            encode_msg_into(&mut buf, sender, &msg);
            prop_assert_eq!(
                &buf[..], &encode_msg(sender, &msg)[..],
                "tag {} pooled encode differs from fresh encode", tag
            );
        }
    }

    #[test]
    fn hello_roundtrips(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let addr = arb_string(&mut rng);
        let sender = arb_node(&mut rng);
        let bytes = encode_hello(sender, &addr);
        let (from, frame) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(from, sender);
        let Frame::Hello { listen_addr } = frame else {
            panic!("decoded as a Msg frame");
        };
        prop_assert_eq!(listen_addr, addr);
    }

    #[test]
    fn replica_image_roundtrips_byte_exactly(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let image = arb_image(&mut rng);
        let bytes = encode_image_bytes(&image);
        let decoded = decode_image_bytes(&bytes).unwrap();
        prop_assert_eq!(encode_image_bytes(&decoded), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let tag = rng.gen_range(0..MSG_VARIANTS);
        let msg = arb_msg(tag, &mut rng);
        let bytes = encode_msg(arb_node(&mut rng), &msg);
        for cut in 0..bytes.len() {
            // Short header and short payload both report Truncated; the
            // point is the decoder returns instead of panicking.
            prop_assert!(
                matches!(decode_frame(&bytes[..cut]), Err(FrameError::Truncated)),
                "tag {} cut {} did not report Truncated", tag, cut
            );
        }
    }

    #[test]
    fn payload_bit_flips_fail_the_checksum(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let tag = rng.gen_range(0..MSG_VARIANTS);
        let msg = arb_msg(tag, &mut rng);
        let mut bytes = encode_msg(arb_node(&mut rng), &msg);
        let at = rng.gen_range(HEADER_LEN..bytes.len());
        let bit = 1u8 << rng.gen_range(0..8u8);
        bytes[at] ^= bit;
        prop_assert!(
            matches!(decode_frame(&bytes), Err(FrameError::ChecksumMismatch)),
            "tag {} flip at {} slipped past the checksum", tag, at
        );
    }

    #[test]
    fn header_corruption_is_a_typed_error(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let tag = rng.gen_range(0..MSG_VARIANTS);
        let msg = arb_msg(tag, &mut rng);
        let mut bytes = encode_msg(arb_node(&mut rng), &msg);
        // Corrupt magic, version, payload length, or crc. The sender and
        // kind bytes are skipped: a sender flip yields a valid frame from
        // a different node, which is the checksum's documented non-goal.
        let targets = [0usize, 1, 2, 3, 4, 10, 11, 12, 13, 14, 15, 16, 17];
        let at = targets[rng.gen_range(0..targets.len())];
        bytes[at] ^= 1u8 << rng.gen_range(0..8u8);
        prop_assert!(
            decode_frame(&bytes).is_err(),
            "tag {} header corruption at byte {} decoded successfully", tag, at
        );
    }

    #[test]
    fn random_garbage_never_panics(junk in prop::collection::vec(any::<u8>(), 0..64)) {
        // Whatever the bytes, decoding must return — a panic fails the test.
        let _ = decode_frame(&junk);
    }
}

/// Split `bytes` into nonempty chunks at boundaries chosen by `rng`.
fn random_chunks(rng: &mut TestRng, bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        let take = rng.gen_range(1..=(bytes.len() - at).min(96));
        chunks.push(bytes[at..at + take].to_vec());
        at += take;
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental decoder, fed the whole corpus — every `Msg`
    /// variant plus a `Hello` — as one byte stream cut at arbitrary
    /// boundaries, must produce exactly the frames a one-shot decode of
    /// each encoding produces, byte-identically (checked by re-encode),
    /// in order. This is the property the event loop relies on: the
    /// kernel hands it arbitrary prefixes, never whole frames.
    #[test]
    fn stream_decoder_matches_one_shot_at_any_split(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let mut stream = Vec::new();
        let mut expected: Vec<(NodeId, Vec<u8>)> = Vec::new();
        for tag in 0..MSG_VARIANTS {
            let msg = arb_msg(tag, &mut rng);
            let sender = arb_node(&mut rng);
            let bytes = encode_msg(sender, &msg);
            stream.extend_from_slice(&bytes);
            expected.push((sender, bytes));
        }
        let hello_sender = arb_node(&mut rng);
        let hello = encode_hello(hello_sender, &arb_string(&mut rng));
        stream.extend_from_slice(&hello);
        expected.push((hello_sender, hello));

        let mut dec = StreamDecoder::new();
        let mut got: Vec<(NodeId, Frame)> = Vec::new();
        for chunk in random_chunks(&mut rng, &stream) {
            dec.feed(&chunk, &mut got).unwrap_or_else(|e| panic!("clean stream errored: {e}"));
        }
        prop_assert!(dec.is_at_boundary(), "leftover bytes after the last frame");
        prop_assert_eq!(got.len(), expected.len(), "frame count mismatch");
        for (i, ((sender, frame), (want_sender, want_bytes))) in
            got.into_iter().zip(expected).enumerate()
        {
            prop_assert_eq!(sender, want_sender, "frame {} sender", i);
            let reencoded = match frame {
                Frame::Msg(msg) => encode_msg(sender, &msg),
                Frame::Hello { listen_addr } => encode_hello(sender, &listen_addr),
            };
            prop_assert_eq!(reencoded, want_bytes, "frame {} differs from one-shot decode", i);
        }
    }

    /// A truncated tail is not an error — it is an incomplete frame the
    /// decoder keeps waiting for. No frame is emitted and the decoder
    /// reports mid-frame state for every cut except the empty one.
    #[test]
    fn stream_decoder_truncation_is_incomplete_not_an_error(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let tag = rng.gen_range(0..MSG_VARIANTS);
        let bytes = encode_msg(arb_node(&mut rng), &arb_msg(tag, &mut rng));
        let cut = rng.gen_range(0..bytes.len());
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for chunk in random_chunks(&mut rng, &bytes[..cut]) {
            dec.feed(&chunk, &mut got)
                .unwrap_or_else(|e| panic!("tag {tag} cut {cut}: truncation errored: {e}"));
        }
        prop_assert!(got.is_empty(), "tag {} cut {} emitted a frame", tag, cut);
        prop_assert_eq!(dec.is_at_boundary(), cut == 0);
        // Completing the stream later yields the frame after all.
        dec.feed(&bytes[cut..], &mut got).unwrap();
        prop_assert_eq!(got.len(), 1);
        prop_assert!(dec.is_at_boundary());
    }

    /// Corruption anywhere surfaces as the same typed error the one-shot
    /// decoder reports, regardless of how the bytes were chunked, and
    /// poisons the decoder: a byte stream has no resync point, so every
    /// subsequent feed must keep failing instead of emitting garbage.
    #[test]
    fn stream_decoder_corruption_is_a_typed_error(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let tag = rng.gen_range(0..MSG_VARIANTS);
        let mut bytes = encode_msg(arb_node(&mut rng), &arb_msg(tag, &mut rng));
        let at = rng.gen_range(HEADER_LEN..bytes.len());
        bytes[at] ^= 1u8 << rng.gen_range(0..8u8);
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        let mut failed = None;
        for chunk in random_chunks(&mut rng, &bytes) {
            if let Err(e) = dec.feed(&chunk, &mut got) {
                failed = Some(e);
                break;
            }
        }
        prop_assert!(
            matches!(failed, Some(FrameError::ChecksumMismatch)),
            "tag {} flip at {} reported {:?}", tag, at, failed
        );
        prop_assert!(got.is_empty());
        prop_assert!(dec.feed(&[0u8], &mut got).is_err(), "poisoned decoder accepted bytes");
    }

    /// Arbitrary garbage through the streaming decoder returns typed
    /// errors or waits for more bytes — it never panics and never
    /// fabricates a frame from a stream whose one-shot decode fails.
    #[test]
    fn stream_decoder_never_panics_on_garbage(junk in prop::collection::vec(any::<u8>(), 0..96)) {
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for chunk in junk.chunks(7) {
            if dec.feed(chunk, &mut got).is_err() {
                break;
            }
        }
        if !junk.is_empty() && decode_frame(&junk).is_err() {
            prop_assert!(got.is_empty(), "garbage yielded a frame");
        }
    }
}
