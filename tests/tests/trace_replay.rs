//! Cross-crate trace tests: record a live workload into the JSONL trace
//! format, then replay it against all three backends (the paper's
//! §4 methodology: capture once, replay everywhere).

use sorrento::client::{ClientOp, SorrentoClient};
use sorrento::cluster::{ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento_baselines::nfs::{NfsCluster, NfsCosts};
use sorrento_baselines::pvfs::{PvfsCluster, PvfsCosts};
use sorrento_sim::Dur;
use sorrento_trace::Trace;
use sorrento_workloads::replay::{ReplayMode, TraceRecorder, TraceReplayer};

/// The source workload whose behaviour we capture.
fn source_ops() -> Vec<ClientOp> {
    vec![
        ClientOp::Mkdir { path: "/app".into() },
        ClientOp::Create { path: "/app/data".into() },
        ClientOp::write_synth(0, 300_000),
        ClientOp::Sync,
        ClientOp::append_synth(50_000),
        ClientOp::Close,
        ClientOp::Open { path: "/app/data".into(), write: false },
        ClientOp::Read { offset: 0, len: 350_000 },
        ClientOp::Read { offset: 100_000, len: 10_000 },
        ClientOp::Close,
        ClientOp::Think { dur: Dur::millis(250) },
        ClientOp::Stat { path: "/app/data".into() },
    ]
}

/// Record on Sorrento, serialize to JSONL, reload, and check the trace's
/// structure and byte accounting.
#[test]
fn record_serialize_reload() {
    let mut c = ClusterBuilder::new()
        .providers(4)
        .seed(71)
        .costs(CostModel::fast_test())
        .build();
    let recorder = TraceRecorder::new(ScriptedWorkload::new(source_ops()));
    let id = c.add_client(recorder);
    c.run_for(Dur::secs(120));
    let stats = c.client_stats(id).unwrap();
    assert_eq!(stats.failed_ops, 0, "{:?}", stats.last_error);
    let trace = c
        .sim
        .node_ref::<SorrentoClient>(id)
        .and_then(|cl| cl.workload_ref::<TraceRecorder<ScriptedWorkload>>())
        .map(|r| r.trace.clone())
        .expect("recorder");
    // Stat is not a traceable I/O op; Think becomes a Gap record.
    assert_eq!(trace.len(), source_ops().len() - 1);
    assert_eq!(trace.bytes_written(), 350_000);
    assert_eq!(trace.bytes_read(), 360_000);
    // Every completed op carries its observed duration.
    assert!(trace.records.iter().all(|r| r.dur_ns.is_some()));
    // JSONL round trip.
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    let back = Trace::read_jsonl(&buf[..]).unwrap();
    assert_eq!(back, trace);
}

/// A trace captured once replays cleanly on every backend, moving the
/// same bytes.
#[test]
fn replay_on_all_backends() {
    // Capture.
    let trace = {
        let mut c = ClusterBuilder::new()
            .providers(4)
            .seed(72)
            .costs(CostModel::fast_test())
            .build();
        let id = c.add_client(TraceRecorder::new(ScriptedWorkload::new(source_ops())));
        c.run_for(Dur::secs(120));
        assert_eq!(c.client_stats(id).unwrap().failed_ops, 0);
        c.sim
            .node_ref::<SorrentoClient>(id)
            .and_then(|cl| cl.workload_ref::<TraceRecorder<ScriptedWorkload>>())
            .map(|r| r.trace.clone())
            .expect("recorder")
    };
    let expect_w = trace.bytes_written();
    let expect_r = trace.bytes_read();

    // Replay on Sorrento.
    {
        let mut c = ClusterBuilder::new()
            .providers(4)
            .seed(73)
            .costs(CostModel::fast_test())
            .build();
        let id = c.add_client(TraceReplayer::new(trace.clone(), ReplayMode::Faithful));
        c.run_for(Dur::secs(180));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0, "sorrento replay: {:?}", s.last_error);
        assert_eq!(s.bytes_written, expect_w);
        assert_eq!(s.bytes_read, expect_r);
    }
    // Replay on NFS.
    {
        let mut c = NfsCluster::new(74, NfsCosts::default());
        let id = c.add_client(TraceReplayer::new(trace.clone(), ReplayMode::AsFast));
        c.run_for(Dur::secs(180));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0, "nfs replay: {:?}", s.last_error);
        assert_eq!(s.bytes_written, expect_w);
        assert_eq!(s.bytes_read, expect_r);
    }
    // Replay on PVFS.
    {
        let mut c = PvfsCluster::new(4, 75, PvfsCosts::default());
        let id = c.add_client(TraceReplayer::new(trace, ReplayMode::AsFast));
        c.run_for(Dur::secs(180));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0, "pvfs replay: {:?}", s.last_error);
        assert_eq!(s.bytes_written, expect_w);
        assert_eq!(s.bytes_read, expect_r);
    }
}

/// Faithful replay honours recorded gaps; as-fast replay skips them.
#[test]
fn replay_modes_differ_in_wall_time() {
    let mut trace = Trace::new();
    trace.push(sorrento_trace::TraceOp::Create { path: "/t".into() });
    trace.push(sorrento_trace::TraceOp::Gap { ns: 20_000_000_000 }); // 20 s
    trace.push(sorrento_trace::TraceOp::Close);
    let run = |mode| {
        let mut c = ClusterBuilder::new()
            .providers(3)
            .seed(76)
            .costs(CostModel::fast_test())
            .build();
        let id = c.add_client(TraceReplayer::new(trace.clone(), mode));
        c.run_for(Dur::secs(120));
        let s = c.client_stats(id).unwrap();
        assert_eq!(s.failed_ops, 0);
        s.finished_at
            .unwrap()
            .since(s.started_at.unwrap())
            .as_secs_f64()
    };
    let faithful = run(ReplayMode::Faithful);
    let fast = run(ReplayMode::AsFast);
    assert!(faithful >= 20.0, "faithful took {faithful}");
    assert!(fast < 5.0, "as-fast took {fast}");
}
