//! Backend parity: the same workloads must *function* identically on
//! Sorrento, NFS and PVFS (only the timing differs) — the property that
//! makes the §4 comparisons meaningful.

use sorrento::client::ClientOp;
use sorrento::cluster::{ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento_baselines::nfs::{NfsCluster, NfsCosts};
use sorrento_baselines::pvfs::{PvfsCluster, PvfsCosts};
use sorrento_sim::Dur;
use sorrento_workloads::bulk::{bulk_options, populate_script, BulkIo, BulkMode};
use sorrento_workloads::smallfile::latency_script;

fn backends(seed: u64) -> Vec<(&'static str, sorrento_bench_shim::Any)> {
    vec![
        (
            "sorrento",
            sorrento_bench_shim::Any::S(Box::new(
                ClusterBuilder::new()
                    .providers(4)
                    .seed(seed)
                    .costs(CostModel::fast_test())
                    .build(),
            )),
        ),
        (
            "nfs",
            sorrento_bench_shim::Any::N(Box::new(NfsCluster::new(seed, NfsCosts::default()))),
        ),
        (
            "pvfs",
            sorrento_bench_shim::Any::P(Box::new(PvfsCluster::new(4, seed, PvfsCosts::default()))),
        ),
    ]
}

/// Minimal backend-uniform shim (the bench crate has a richer one; tests
/// keep their own to avoid a dev-dependency cycle).
mod sorrento_bench_shim {
    use super::*;
    pub enum Any {
        S(Box<sorrento::cluster::Cluster>),
        N(Box<NfsCluster>),
        P(Box<PvfsCluster>),
    }
    impl Any {
        pub fn run(&mut self, ops: Vec<ClientOp>, horizon: Dur) -> sorrento::client::ClientStats {
            match self {
                Any::S(c) => {
                    let id = c.add_client(ScriptedWorkload::new(ops));
                    c.run_for(horizon);
                    c.client_stats(id).unwrap().clone()
                }
                Any::N(c) => {
                    let id = c.add_client(ScriptedWorkload::new(ops));
                    c.run_for(horizon);
                    c.client_stats(id).unwrap().clone()
                }
                Any::P(c) => {
                    let id = c.add_client(ScriptedWorkload::new(ops));
                    c.run_for(horizon);
                    c.client_stats(id).unwrap().clone()
                }
            }
        }
        pub fn run_workload<W: sorrento::client::Workload>(
            &mut self,
            w: W,
            horizon: Dur,
        ) -> sorrento::client::ClientStats {
            match self {
                Any::S(c) => {
                    let id = c.add_client(w);
                    c.run_for(horizon);
                    c.client_stats(id).unwrap().clone()
                }
                Any::N(c) => {
                    let id = c.add_client(w);
                    c.run_for(horizon);
                    c.client_stats(id).unwrap().clone()
                }
                Any::P(c) => {
                    let id = c.add_client(w);
                    c.run_for(horizon);
                    c.client_stats(id).unwrap().clone()
                }
            }
        }
    }
}

/// The Figure 9 latency script runs clean on every backend.
#[test]
fn smallfile_script_runs_on_all_backends() {
    for (name, mut b) in backends(81) {
        let stats = b.run(latency_script("/bench", 10), Dur::secs(300));
        assert_eq!(stats.failed_ops, 0, "{name}: {:?}", stats.last_error);
        // mkdir + 10×(create+close) + 10×(open+write+close)
        // + 10×(open+read+close) + 10×unlink = 91 ops.
        assert_eq!(stats.completed_ops, 91, "{name}");
        assert_eq!(stats.bytes_written, 10 * 12 * 1024, "{name}");
        assert_eq!(stats.bytes_read, 10 * 12 * 1024, "{name}");
    }
}

/// The bulk benchmark moves its full quota on every backend.
#[test]
fn bulk_quota_completes_on_all_backends() {
    for (name, mut b) in backends(82) {
        let pop = populate_script("/bulk", 1, 64 << 20, bulk_options());
        let stats = b.run(pop, Dur::secs(600));
        assert_eq!(stats.failed_ops, 0, "{name} populate: {:?}", stats.last_error);
        let io = BulkIo::new("/bulk", 1, 64 << 20, BulkMode::Read, Some(32 << 20));
        let stats = b.run_workload(io, Dur::secs(600));
        assert_eq!(stats.failed_ops, 0, "{name} bulk: {:?}", stats.last_error);
        assert_eq!(stats.bytes_read, 32 << 20, "{name}");
    }
}

/// Error semantics agree across backends: opening a missing file fails
/// with NotFound everywhere, then a valid create succeeds.
#[test]
fn error_semantics_agree() {
    for (name, mut b) in backends(83) {
        let stats = b.run(
            vec![
                ClientOp::Open { path: "/missing".into(), write: false },
                ClientOp::Create { path: "/made".into() },
                ClientOp::Close,
                ClientOp::Stat { path: "/made".into() },
            ],
            Dur::secs(120),
        );
        assert_eq!(stats.failed_ops, 1, "{name}");
        assert_eq!(stats.completed_ops, 3, "{name}");
    }
}
