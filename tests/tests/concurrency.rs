//! Concurrency-control integration tests: optimistic version conflicts,
//! commit leases, and the atomic-append pattern of §3.5 / Figure 4.

use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::types::Error;
use sorrento_sim::Dur;

fn cluster(seed: u64) -> Cluster {
    ClusterBuilder::new()
        .providers(4)
        .seed(seed)
        .costs(CostModel::fast_test())
        .build()
}

/// Two writers race on the same file: exactly one commit wins, the loser
/// observes a version conflict at commit time (§3.5: conflicts "will
/// always be detected during the commit phase").
#[test]
fn concurrent_commits_conflict() {
    let mut c = cluster(31);
    // Writer 1 creates and commits the file first.
    let w1 = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/shared".into() },
        ClientOp::write_bytes(0, vec![1; 10_000]),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(w1).unwrap().failed_ops, 0);
    // Both writers open v1, modify, and close; their 2PC windows overlap
    // because each thinks between open and close.
    let w2 = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/shared".into(), write: true },
        ClientOp::write_bytes(0, vec![2; 10_000]),
        ClientOp::Think { dur: Dur::secs(2) },
        ClientOp::Close,
    ]));
    let w3 = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/shared".into(), write: true },
        ClientOp::write_bytes(0, vec![3; 10_000]),
        ClientOp::Think { dur: Dur::secs(5) },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let s2 = c.client_stats(w2).unwrap().clone();
    let s3 = c.client_stats(w3).unwrap().clone();
    let failures = s2.failed_ops + s3.failed_ops;
    assert_eq!(failures, 1, "exactly one loser: {s2:?} {s3:?}");
    let loser_err = s2.last_error.clone().or(s3.last_error.clone());
    assert_eq!(loser_err, Some(Error::VersionConflict));
    // The winner's bytes are what a reader sees.
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/shared".into(), write: false },
        ClientOp::Read { offset: 0, len: 10_000 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    let winner_byte = if s2.failed_ops == 0 { 2u8 } else { 3u8 };
    assert_eq!(
        c.client_stats(reader).unwrap().last_read.as_deref(),
        Some(&vec![winner_byte; 10_000][..])
    );
}

/// Atomic append (Figure 4): concurrent appenders all succeed through the
/// retry loop, and the final file contains every record exactly once.
#[test]
fn atomic_append_under_contention() {
    let mut c = cluster(32);
    let init = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/log".into() },
        ClientOp::write_bytes(0, vec![0xFF; 8]), // 8-byte header
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(init).unwrap().failed_ops, 0);
    // 3 appenders × 4 records each, all racing.
    let rec_len = 512usize;
    let mut appenders = Vec::new();
    for a in 0..3u8 {
        let mut ops = vec![ClientOp::Open { path: "/log".into(), write: true }];
        for r in 0..4u8 {
            ops.push(ClientOp::AtomicAppend {
                payload: sorrento::store::WritePayload::Real(vec![0x10 + a * 4 + r; rec_len].into()),
            });
        }
        ops.push(ClientOp::Close);
        appenders.push(c.add_client(ScriptedWorkload::new(ops)));
    }
    c.run_for(Dur::secs(600));
    let mut conflicts = 0;
    for &a in &appenders {
        let s = c.client_stats(a).unwrap();
        assert_eq!(
            s.failed_ops, 0,
            "appender failed: {:?} (finished {:?})",
            s.last_error, s.finished_at
        );
        conflicts += s.conflicts;
    }
    // With overlapping commits there must have been at least one retry.
    assert!(conflicts > 0, "appenders never contended");
    // Read everything back: 8-byte header + 12 records, each record
    // uniform and every tag present exactly once.
    let total = 8 + 12 * rec_len;
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/log".into(), write: false },
        ClientOp::Read { offset: 0, len: total as u64 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0, "{:?}", rs.last_error);
    let data = rs.last_read.clone().expect("real data");
    assert_eq!(data.len(), total, "lost or duplicated records");
    let mut tags: Vec<u8> = Vec::new();
    for r in 0..12 {
        let rec = &data[8 + r * rec_len..8 + (r + 1) * rec_len];
        assert!(rec.windows(2).all(|w| w[0] == w[1]), "torn record {r}");
        tags.push(rec[0]);
    }
    tags.sort();
    let expect: Vec<u8> = (0..12u8).map(|i| 0x10 + i).collect();
    assert_eq!(tags, expect, "records lost/duplicated under contention");
}

/// A reader holding an old open sees the version it opened (immutable
/// committed versions), not the concurrent writer's new one.
#[test]
fn reads_are_not_torn_by_concurrent_commits() {
    let mut c = cluster(33);
    let init = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/v".into() },
        ClientOp::write_bytes(0, vec![7; 300_000]),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(init).unwrap().failed_ops, 0);
    // Reader opens, waits (a writer commits meanwhile), then reads.
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/v".into(), write: false },
        ClientOp::Think { dur: Dur::secs(20) },
        ClientOp::Read { offset: 0, len: 300_000 },
        ClientOp::Close,
    ]));
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Think { dur: Dur::secs(2) },
        ClientOp::Open { path: "/v".into(), write: true },
        ClientOp::write_bytes(0, vec![8; 300_000]),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(120));
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0);
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0, "{:?}", rs.last_error);
    let data = rs.last_read.clone().unwrap();
    // Never a torn mix: all old bytes (the snapshot the reader opened) or
    // all new (if the old version was consolidated away and the replica
    // served the newer one) — but uniform either way.
    assert!(
        data.iter().all(|&b| b == 7) || data.iter().all(|&b| b == 8),
        "torn read"
    );
}

/// Creating the same path twice fails; creating in a missing directory
/// fails; stats agree.
#[test]
fn namespace_error_paths() {
    let mut c = cluster(34);
    let id = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Create { path: "/dup".into() },
        ClientOp::Close,
        ClientOp::Create { path: "/dup".into() }, // AlreadyExists
        ClientOp::Create { path: "/nodir/x".into() }, // NotFound
        ClientOp::Unlink { path: "/missing".into() }, // NotFound
    ]));
    c.run_for(Dur::secs(60));
    let s = c.client_stats(id).unwrap();
    assert_eq!(s.failed_ops, 3);
    assert_eq!(s.completed_ops, 2);
}

/// Versioning-off byte-range sharing (§3.5): concurrent writers to
/// disjoint ranges of one pre-sized file proceed without any version
/// conflicts — the mode BTIO's list-I/O replay uses (§4.2.2).
#[test]
fn byte_range_mode_concurrent_disjoint_writers() {
    use sorrento::types::{FileOptions, Organization};
    let mut c = cluster(35);
    let options = FileOptions {
        organization: Organization::Striped {
            stripes: 4,
            max_size: 4 << 20,
        },
        versioning_off: true,
        ..FileOptions::default()
    };
    // Coordinator pre-sizes the file.
    let coord = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::CreateWith { path: "/btio".into(), options },
        ClientOp::write_bytes(0, vec![0; 4 << 20]),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    assert_eq!(
        c.client_stats(coord).unwrap().failed_ops,
        0,
        "{:?}",
        c.client_stats(coord).unwrap().last_error
    );
    // Four concurrent writers, each owning a disjoint 1 MB quarter.
    let mut writers = Vec::new();
    for w in 0..4u64 {
        writers.push(c.add_client(ScriptedWorkload::new(vec![
            ClientOp::Open { path: "/btio".into(), write: true },
            ClientOp::write_bytes(w * (1 << 20), vec![w as u8 + 1; 1 << 20]),
            ClientOp::Close,
        ])));
    }
    c.run_for(Dur::secs(120));
    for &w in &writers {
        let s = c.client_stats(w).unwrap();
        assert_eq!(s.failed_ops, 0, "writer failed: {:?}", s.last_error);
        assert_eq!(s.conflicts, 0, "byte-range mode must not conflict");
    }
    // Every quarter holds its writer's bytes.
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/btio".into(), write: false },
        ClientOp::Read { offset: 0, len: 4 << 20 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let rs = c.client_stats(reader).unwrap();
    assert_eq!(rs.failed_ops, 0, "{:?}", rs.last_error);
    let data = rs.last_read.clone().unwrap();
    for w in 0..4usize {
        let quarter = &data[w << 20..(w + 1) << 20];
        assert!(
            quarter.iter().all(|&b| b == w as u8 + 1),
            "quarter {w} corrupted"
        );
    }
}
