//! Simulator-level equivalence tests for the pipelined chunked write
//! path: splitting a large extent write into a window of in-flight
//! chunks must commit exactly the same bytes and version as the
//! single-message path, for any window size.

use sorrento::client::{ClientOp, SorrentoClient};
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::types::FileOptions;
use sorrento_sim::Dur;

fn patterned(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// Run create/write/close then open/read/close with the given chunking
/// knobs; return (failed_ops, last_error, readback).
fn run(
    write_chunk: Option<u64>,
    write_window: usize,
    data: &[u8],
) -> (u64, Option<sorrento::Error>, Option<Vec<u8>>) {
    let mut c: Cluster = ClusterBuilder::new()
        .providers(4)
        .replication(2)
        .seed(42)
        .costs(CostModel::fast_test())
        .build();
    let ops = vec![
        ClientOp::CreateWith {
            path: "/chunked".into(),
            options: FileOptions { replication: 2, eager_commit: true, ..FileOptions::default() },
        },
        ClientOp::write_bytes(0, data.to_vec()),
        ClientOp::Close,
        ClientOp::Open { path: "/chunked".into(), write: false },
        ClientOp::Read { offset: 0, len: data.len() as u64 },
        ClientOp::Close,
    ];
    let id = c.add_client(ScriptedWorkload::new(ops));
    {
        let client = c.sim.node_mut::<SorrentoClient>(id).expect("client node");
        client.write_chunk = write_chunk;
        client.write_window = write_window;
    }
    c.run_for(Dur::secs(300));
    let stats = c.client_stats(id).unwrap().clone();
    (
        stats.failed_ops,
        stats.last_error,
        stats.last_read.map(|b| b.to_vec()),
    )
}

#[test]
fn chunked_windows_commit_identical_contents() {
    let data = patterned(768 * 1024);
    let (f0, e0, r0) = run(None, 1, &data);
    assert_eq!(f0, 0, "unchunked control failed: {e0:?}");
    assert_eq!(r0.as_deref(), Some(&data[..]), "unchunked readback mismatch");
    for window in [1usize, 4, 16] {
        let (f, e, r) = run(Some(32 * 1024), window, &data);
        assert_eq!(f, 0, "window={window} failed: {e:?}");
        assert_eq!(r.as_deref(), Some(&data[..]), "window={window} readback mismatch");
    }
}

#[test]
fn chunk_size_smaller_than_extent_tail_is_exact() {
    // A payload that is not a multiple of the chunk size: the final
    // short chunk must land exactly.
    let data = patterned(100_001);
    let (f, e, r) = run(Some(4096), 3, &data);
    assert_eq!(f, 0, "ragged tail write failed: {e:?}");
    assert_eq!(r.as_deref(), Some(&data[..]), "ragged tail readback mismatch");
}
