//! Thread census for the event-loop mesh: the whole point of the
//! readiness-driven rewrite is that a node's thread count is **O(1) in
//! peers and connections** — one event loop (`sorrento-net-<idx>`) plus
//! one dialer (`sorrento-dial-<idx>`), no matter how many sockets are
//! live. The old design spawned a reader thread per inbound connection
//! and a sender thread per outbound peer, which is exactly what this
//! test would catch: at 8 peers + 64 raw sockets it would count dozens
//! of threads instead of two.
//!
//! The census reads `/proc/self/task/*/comm`, so it is Linux-only (the
//! whole runtime is; the shims use raw epoll syscalls). Thread names
//! are truncated to 15 bytes by the kernel — node indices here are
//! chosen so every truncated name is still unambiguous.

#![cfg(target_os = "linux")]

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use sorrento::proto::Msg;
use sorrento_net::tcp::{Mesh, MeshConfig};
use sorrento_sim::NodeId;

/// Count live threads whose name belongs to `me`'s mesh.
fn mesh_threads_of(me: NodeId) -> usize {
    let prefixes =
        [format!("sorrento-net-{}", me.index()), format!("sorrento-dial-{}", me.index())];
    let prefixes: Vec<&str> = prefixes.iter().map(|p| &p[..p.len().min(15)]).collect();
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else { return 0 };
    tasks
        .flatten()
        .filter_map(|t| std::fs::read_to_string(t.path().join("comm")).ok())
        .filter(|comm| prefixes.contains(&comm.trim_end()))
        .count()
}

/// Count every mesh-owned thread in the process, any node.
fn all_mesh_threads() -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else { return 0 };
    tasks
        .flatten()
        .filter_map(|t| std::fs::read_to_string(t.path().join("comm")).ok())
        .filter(|c| c.starts_with("sorrento-net-") || c.starts_with("sorrento-dial"))
        .count()
}

/// Poll until `actual()` reaches `expected` — threads name themselves
/// shortly after spawn, and shutdown joins are near-instant but not
/// atomic with the census read.
fn expect(expected: usize, what: &str, actual: impl Fn() -> usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let n = actual();
        if n == expected {
            return;
        }
        assert!(Instant::now() < deadline, "{what}: census {n}, expected {expected}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn mesh(i: usize) -> Mesh {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    Mesh::start(NodeId::from_index(i), l, HashMap::new(), MeshConfig::default()).unwrap()
}

/// One hub, 8 dialed-in peers, 64 raw accepted sockets: the hub runs
/// exactly two threads throughout, and every thread is joined on
/// shutdown.
#[test]
fn mesh_threads_are_o1_in_connections() {
    let hub_id = NodeId::from_index(5);
    let hub = mesh(5);
    expect(2, "fresh mesh must run exactly 2 threads", || mesh_threads_of(hub_id));

    // 8 peers dial in and prove their connections live by delivering a
    // frame each. Peer indices 10..18 truncate to distinct names and
    // never collide with the hub's.
    let mut peers: Vec<Mesh> = (10..18).map(mesh).collect();
    for (i, p) in peers.iter_mut().enumerate() {
        p.add_peer(hub_id, hub.listen_addr());
        p.send(hub_id, &Msg::StatsQuery { req: i as u64 });
    }
    let mut got = 0;
    while got < peers.len() {
        match hub.recv_timeout(Duration::from_secs(10)) {
            Some((_, Msg::StatsQuery { .. })) => got += 1,
            other => panic!("hub starved at {got}/8: {other:?}"),
        }
    }

    // A crowd of raw sockets — accepted and registered by the event
    // loop, never speaking the protocol — must not spawn anything
    // either. (Under the old reader-thread-per-connection design this
    // alone added 64 threads.)
    let raw: Vec<TcpStream> =
        (0..64).map(|_| TcpStream::connect(hub.listen_addr()).unwrap()).collect();
    // Give the loop a beat to accept them all, then census.
    std::thread::sleep(Duration::from_millis(100));
    expect(2, "hub thread count grew with connections", || mesh_threads_of(hub_id));
    // Process-wide: hub + 8 peers, two threads each.
    expect(2 * 9, "process-wide mesh thread count", all_mesh_threads);

    drop(raw);
    drop(peers);
    drop(hub);
    expect(0, "mesh threads leaked past shutdown", all_mesh_threads);
}
