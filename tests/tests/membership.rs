//! Gossip-membership integration tests: SWIM failure detection in the
//! deterministic simulator.
//!
//! These exercise the properties §9.9 of DESIGN.md promises: no false
//! positives under sustained packet loss, incarnation refutation when a
//! live node is wrongly suspected, bounded detection latency at scale,
//! and bounded dissemination (every survivor converges on the verdict).

use sorrento::cluster::{Cluster, ClusterBuilder};
use sorrento::costs::CostModel;
use sorrento::swim::MembershipMode;
use sorrento_sim::{Dur, NodeId, TelemetryEvent};

fn swim_cluster(providers: usize, seed: u64, loss_permille: u32, warmup: Dur) -> Cluster {
    let mut b = ClusterBuilder::new()
        .providers(providers)
        .seed(seed)
        .costs(CostModel::fast_test())
        .membership(MembershipMode::Swim)
        .warmup(warmup);
    if loss_permille > 0 {
        b = b.loss(loss_permille, seed ^ 0x10551);
    }
    b.build()
}

/// Count telemetry events of interest across all providers, after `t0`.
struct Tally {
    suspects: u64,
    refutes: u64,
    leaves: u64,
    deaths: u64,
}

fn tally(c: &Cluster, after: sorrento_sim::SimTime) -> Tally {
    let mut t = Tally { suspects: 0, refutes: 0, leaves: 0, deaths: 0 };
    for &p in c.providers() {
        for rec in c.sim.events(p).iter() {
            if rec.at < after {
                continue;
            }
            match rec.ev {
                TelemetryEvent::SwimSuspect { .. } => t.suspects += 1,
                TelemetryEvent::SwimRefute { .. } => t.refutes += 1,
                TelemetryEvent::MemberLeave { .. } => t.leaves += 1,
                TelemetryEvent::DeathDeclared { .. } => t.deaths += 1,
                _ => {}
            }
        }
    }
    t
}

/// 16 providers gossiping for 30 virtual seconds under 10% packet loss:
/// suspicions may form, but nobody healthy may ever be evicted.
#[test]
fn no_false_positives_under_ten_percent_loss() {
    let mut c = swim_cluster(16, 911, 100, Dur::secs(5));
    let t0 = c.now();
    c.run_for(Dur::secs(30));
    let t = tally(&c, t0);
    assert_eq!(t.leaves, 0, "a live node was evicted from some view");
    assert_eq!(t.deaths, 0, "a live node was declared dead");
    // The loss rate is high enough that at least one probe window must
    // have gone silent; the refutation machinery is what kept the view
    // clean, so prove it actually ran.
    assert!(t.suspects > 0, "30 s at 10% loss produced no suspicion at all");
    assert!(t.refutes > 0, "suspicions formed but nobody refuted");
}

/// A live-but-unreachable node (total loss window shorter than the
/// suspicion timeout) is suspected, then refutes by incarnation bump
/// once packets flow again — and is never evicted.
#[test]
fn slow_node_refutes_suspicion() {
    let mut c = swim_cluster(8, 417, 0, Dur::secs(5));
    let t0 = c.now();
    // Black out the network long enough for probe windows to expire
    // (ack_timeout·3 = 180 ms at fast_test) but well short of the
    // 1.6 s suspicion window, then restore it.
    c.sim.set_loss(1000, 99);
    c.run_for(Dur::millis(600));
    c.sim.set_loss(0, 99);
    c.run_for(Dur::secs(10));
    let t = tally(&c, t0);
    assert!(t.suspects > 0, "a 600 ms blackout formed no suspicion");
    assert!(t.refutes > 0, "no node refuted its suspicion after the blackout");
    assert_eq!(t.leaves, 0, "a refutable suspicion still led to eviction");
    assert_eq!(t.deaths, 0);
}

/// Crash one of 500 providers: every survivor detects the death within
/// a bounded number of suspicion windows, lossless case.
#[test]
fn detection_latency_bounded_at_500_providers() {
    let n = 500;
    // Warm up until every view has admitted every provider: payload
    // knowledge spreads by anti-entropy pulls, ~log2(n) rounds of 2 s.
    let mut c = swim_cluster(n, 2026, 0, Dur::secs(30));
    let victim = c.providers()[n / 2];
    let t_kill = c.now();
    c.crash_provider_at(t_kill, victim);
    c.run_for(Dur::secs(20));
    // Budget: up to one probe interval until someone probes the victim,
    // a full probe window, the 1.6 s suspicion window plus the
    // last-chance grace, then ~log₂(500) ≈ 9 gossip rounds to spread
    // the confirmation. ~4.5 s at fast_test timings; allow 2× slack.
    let bound = Dur::secs(9);
    let survivors: Vec<NodeId> =
        c.providers().iter().copied().filter(|&p| p != victim).collect();
    let mut worst = Dur::nanos(0);
    for &p in &survivors {
        let detected = c
            .sim
            .events(p)
            .iter()
            .find(|r| {
                r.at >= t_kill
                    && matches!(r.ev, TelemetryEvent::MemberLeave { of } if of == victim)
            })
            .map(|r| r.at)
            .unwrap_or_else(|| panic!("survivor {p} never evicted the crashed victim"));
        let lat = Dur::nanos(detected.nanos() - t_kill.nanos());
        if lat > worst {
            worst = lat;
        }
    }
    assert!(
        worst <= bound,
        "slowest survivor took {} ms, bound {} ms",
        worst.as_nanos() / 1_000_000,
        bound.as_nanos() / 1_000_000
    );
    let t = tally(&c, t_kill);
    assert_eq!(t.leaves, (n - 1) as u64, "exactly one eviction per survivor");
}

/// Dissemination is bounded: once the first survivor confirms the
/// death, the verdict reaches every other survivor within a bounded
/// number of gossip rounds (it must not trickle via anti-entropy).
#[test]
fn gossip_convergence_within_bounded_rounds() {
    let n = 100;
    let mut c = swim_cluster(n, 3141, 0, Dur::secs(30));
    let victim = c.providers()[n / 3];
    let t_kill = c.now();
    c.crash_provider_at(t_kill, victim);
    c.run_for(Dur::secs(20));
    let mut detections: Vec<u64> = Vec::new();
    for &p in c.providers().iter().filter(|&&p| p != victim) {
        let at = c
            .sim
            .events(p)
            .iter()
            .find(|r| {
                r.at >= t_kill
                    && matches!(r.ev, TelemetryEvent::MemberLeave { of } if of == victim)
            })
            .map(|r| r.at.nanos())
            .unwrap_or_else(|| panic!("survivor {p} never evicted the crashed victim"));
        detections.push(at);
    }
    let first = *detections.iter().min().unwrap();
    let last = *detections.iter().max().unwrap();
    let spread_ms = (last - first) / 1_000_000;
    // log₂(100) ≈ 6.6 rounds of 200 ms ≈ 1.3 s; independent suspicion
    // timers add at most one more window. Allow 2× slack over that.
    assert!(spread_ms <= 6_000, "dissemination took {spread_ms} ms first-to-last");
}
