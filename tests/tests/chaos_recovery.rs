//! The chaos game-day drill, as a test: a real loopback cluster runs
//! under deterministic fault injection (10% frame loss, plus duplicates
//! and delays), a provider is killed abruptly mid-run and restarted on
//! its surviving `data_dir`, and the cluster must converge — every
//! write and read completes correctly, no client ever hangs, and the
//! file's replication degree is restored on disk.
//!
//! The whole scenario runs once per fixed seed. Chaos decisions are a
//! pure function of (seed, link, frame index), so a failing seed
//! reproduces the same drop/duplicate/delay pattern on every rerun —
//! that is what makes a network-failure bug from this test debuggable.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use sorrento::api::FsScript;
use sorrento::costs::CostModel;
use sorrento::types::FileOptions;
use sorrento_kvdb::{Db, DbConfig, FileBackend};
use sorrento_net::chaos::ChaosConfig;
use sorrento::locator::LocationScheme;
use sorrento::swim::MembershipMode;
use sorrento_net::config::{CtlConfig, DaemonConfig, PeerSpec, Role};
use sorrento_net::ctl;
use sorrento_net::daemon::{self, DaemonHandle};
use sorrento_net::frame::decode_image_bytes;
use sorrento_sim::NodeId;

const DEADLINE: Duration = Duration::from_secs(60);
/// The three fixed drill seeds (`make chaos-smoke` runs exactly these).
const SEEDS: [u64; 3] = [11, 42, 1337];

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// The boot config for node `i` of an `n`-node cluster (node 0 is the
/// namespace server; every provider gets a persistent `data_dir`).
fn daemon_cfg(
    i: usize,
    all_peers: &[PeerSpec],
    data_dir: Option<std::path::PathBuf>,
) -> DaemonConfig {
    DaemonConfig {
        node_id: NodeId::from_index(i),
        role: if i == 0 { Role::Namespace } else { Role::Provider },
        listen: all_peers[i].addr.clone(),
        data_dir,
        seed: 100 + i as u64,
        capacity: 1 << 30,
        machine: i as u32,
        rack: i as u32,
        costs: CostModel::fast_test(),
        chaos: Default::default(),
        metrics_interval_ms: None,
        shard: 0,
        ns_shards: 1,
        ns_map: Vec::new(),
        ns_checkpoint_batches: None,
                membership: MembershipMode::Heartbeat,
                location: LocationScheme::Ring,
        peers: all_peers
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, p)| p.clone())
            .collect(),
    }
}

/// Rebind a just-released listen address (the restarted provider must
/// come back on the address its peers already know).
fn bind_retry(addr: &str) -> TcpListener {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot rebind {addr}: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Read until the bytes come back equal to `want`, retrying failed
/// attempts while the cluster converges. Individual attempts may fail
/// with *typed* errors (`Unavailable`, `DeadlineExceeded`,
/// `NoSuchSegment` while locations are stale) — but a client that
/// *hangs* (its workload unfinished past the per-run deadline) fails
/// the drill immediately.
fn read_until(cfg: &CtlConfig, path: &str, want: &[u8], min_providers: usize, what: &str) {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let mut fs = FsScript::new();
        let h = fs.open(path, false).unwrap();
        fs.read(h, 0, want.len() as u64).unwrap();
        fs.close(h).unwrap();
        let err = match ctl::run_script(cfg, fs.into_ops(), min_providers, Duration::from_secs(25))
        {
            Ok(out) if out.stats.failed_ops == 0 => {
                assert_eq!(out.stats.last_read.as_deref(), Some(want), "{what}: bytes differ");
                return;
            }
            // The op completed but with a typed error: retry.
            Ok(out) => format!("{:?}", out.stats.last_error),
            // Every op carries a deadline, so an unfinished workload
            // means the client wedged — the exact bug this PR removes.
            Err(ctl::CtlError::Deadline(stats)) => {
                panic!("{what}: client hung ({} ops done): {stats:?}", stats.completed_ops)
            }
            Err(e) => e.to_string(),
        };
        assert!(
            Instant::now() < deadline,
            "{what}: no convergence before the deadline (last error: {err})"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Total replica count across all providers, from each daemon's
/// `<node>.segments` gauge (set every heartbeat tick).
fn replicas_held(cfg: &CtlConfig, providers: &[usize]) -> f64 {
    providers
        .iter()
        .map(|&i| {
            let json = ctl::fetch_stats(cfg, NodeId::from_index(i), Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("stats from n{i}: {e}"));
            sorrento_json::Json::parse(&json)
                .ok()
                .and_then(|j| j.get("gauges")?.get(&format!("n{i}.segments"))?.as_f64())
                .unwrap_or(0.0)
        })
        .sum()
}

fn run_drill(seed: u64) {
    let base = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("chaos-{seed}"));
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<std::path::PathBuf> = (1..4).map(|i| base.join(format!("p{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    // Bind everything first so every config carries real addresses.
    let listeners: Vec<TcpListener> =
        (0..4).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback")).collect();
    let all_peers: Vec<PeerSpec> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| PeerSpec {
            id: NodeId::from_index(i),
            addr: l.local_addr().unwrap().to_string(),
            machine: i as u32,
        })
        .collect();
    let mut handles: Vec<DaemonHandle> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let dir = if i == 0 { None } else { Some(dirs[i - 1].clone()) };
            daemon::spawn_with_listener(daemon_cfg(i, &all_peers, dir), listener)
                .expect("spawn daemon")
        })
        .collect();

    // The resilient client: same-request resends with backoff, a whole-
    // op deadline so nothing can hang, reply dedup doing the rest.
    let cfg = CtlConfig {
        ctl_id: NodeId::from_index(1000),
        namespace: NodeId::from_index(0),
        seed: 7,
        replication: 2,
        costs: CostModel::fast_test(),
        write_chunk: None,
        write_window: 4,
        rpc_resends: 2,
        op_deadline_ms: Some(20_000),
        ns_map: Vec::new(),
        membership: MembershipMode::Heartbeat,
        location: LocationScheme::Ring,
        peers: all_peers.clone(),
    };

    // Install fault injection on every daemon: 10% drop, 5% duplicate,
    // 3% delayed by 2 ms — on every frame each daemon sends.
    for i in 0..4 {
        let chaos = ChaosConfig {
            seed: seed ^ i as u64,
            drop_permille: 100,
            dup_permille: 50,
            delay_permille: 30,
            delay: Duration::from_millis(2),
            partition: Vec::new(),
        };
        ctl::set_chaos(&cfg, NodeId::from_index(i), &chaos, DEADLINE)
            .expect("install chaos rules");
    }

    // Write through the lossy mesh. 96 KiB detaches into a real data
    // segment; replication 2 with eager commit places two replicas.
    // Like every step under chaos, the write converges rather than
    // succeeding in one shot: an attempt may exhaust its retry budget
    // and fail with a *typed* error, and the next attempt (a fresh
    // session with a fresh request-id range) runs it again.
    let data = payload(96 * 1024);
    let deadline = Instant::now() + DEADLINE;
    loop {
        let mut fs = FsScript::new();
        let h = fs
            .create_with(
                "/drill",
                FileOptions { replication: 2, eager_commit: true, ..FileOptions::default() },
            )
            .unwrap();
        fs.close(h).unwrap();
        let out = ctl::run_script(&cfg, fs.into_ops(), 3, Duration::from_secs(25))
            .expect("create under chaos: client did not finish");
        // AlreadyExists means a previous attempt created it before dying.
        let ok = out.stats.failed_ops == 0
            || matches!(out.stats.last_error, Some(sorrento::types::Error::AlreadyExists));
        if ok {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: create never converged: {:?}",
            out.stats.last_error
        );
        std::thread::sleep(Duration::from_millis(200));
    }
    loop {
        let mut fs = FsScript::new();
        let h = fs.open("/drill", true).unwrap();
        fs.write(h, 0, data.clone()).unwrap();
        fs.close(h).unwrap();
        let out = ctl::run_script(&cfg, fs.into_ops(), 3, Duration::from_secs(25))
            .expect("write under chaos: client did not finish");
        if out.stats.failed_ops == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: write never converged: {:?}",
            out.stats.last_error
        );
        std::thread::sleep(Duration::from_millis(200));
    }

    read_until(&cfg, "/drill", &data, 3, "read under chaos");

    // Eager commit is best-effort under loss: a dropped sync can leave a
    // segment at replication 1 until the repair scan re-replicates it.
    // Wait for the full degree — two segments (index + data) at
    // replication 2 — so that killing *any* provider leaves a live
    // replica of everything.
    let deadline = Instant::now() + DEADLINE;
    loop {
        let held = replicas_held(&cfg, &[1, 2, 3]);
        if held >= 4.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: repair never restored replication ({held} replicas held)"
        );
        std::thread::sleep(Duration::from_millis(250));
    }

    // Crash a provider: abrupt exit, no final persistence sweep — its
    // disk holds whatever the continuous 200 ms sweeps captured.
    let victim = handles.pop().unwrap();
    let victim_addr = victim.addr.to_string();
    victim.kill().expect("abrupt kill");

    // The cluster still serves the file from the surviving replica set,
    // with the frame loss still on (retrying while the survivors notice
    // the death and expire stale locations).
    read_until(&cfg, "/drill", &data, 2, "read after kill");

    // Restart the victim on the same address and data_dir: boot
    // reinstalls its persisted segments, heartbeats re-admit it.
    let listener = bind_retry(&victim_addr);
    let restarted = daemon::spawn_with_listener(
        daemon_cfg(3, &all_peers, Some(dirs[2].clone())),
        listener,
    )
    .expect("restart victim");
    handles.push(restarted);

    // Convergence: all three providers discoverable again, bytes intact.
    read_until(&cfg, "/drill", &data, 3, "read after restart");

    // Let repair finish restoring the replication degree, then stop
    // cleanly (each stop persists that provider's current segments).
    std::thread::sleep(Duration::from_secs(2));
    for h in handles {
        h.stop().expect("clean shutdown");
    }

    // All replicas restored: the data segment must exist, bytes intact,
    // on at least `replication` provider disks.
    let copies = dirs
        .iter()
        .filter(|dir| {
            let db = Db::open(FileBackend::open((*dir).clone()).unwrap(), DbConfig::default())
                .unwrap();
            let held = db
                .scan_prefix(b"seg/")
                .filter_map(|(_, v)| decode_image_bytes(v).ok())
                .any(|img| img.data.as_deref() == Some(&data[..]));
            held
        })
        .count();
    assert!(copies >= 2, "seed {seed}: only {copies} on-disk replicas carry the data");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn chaos_drill_converges_for_fixed_seeds() {
    for seed in SEEDS {
        run_drill(seed);
    }
}
