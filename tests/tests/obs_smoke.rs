//! The observability smoke drill behind `make obs-smoke`: boot a
//! 1-namespace + 2-provider loopback cluster with the periodic metrics
//! writer on, scrape every node the way `sorrentoctl top` does, kill a
//! provider, and hold the artifacts the runtime leaves behind — the
//! crash node's flight dump and the `metrics.jsonl` snapshots — to the
//! schema checkers in `sorrento_tests`. This is the freshness guarantee
//! for the on-disk observability contract: rename a field and this
//! fails before any dashboard goes dark.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use sorrento::api::FsScript;
use sorrento::costs::CostModel;
use sorrento_json::Json;
use sorrento::locator::LocationScheme;
use sorrento::swim::MembershipMode;
use sorrento_net::config::{CtlConfig, DaemonConfig, PeerSpec, Role};
use sorrento_net::ctl;
use sorrento_net::daemon;
use sorrento_sim::NodeId;
use sorrento_tests::{check_flight_dump, check_stats_snapshot, STATS_SCHEMA_V};

const DEADLINE: Duration = Duration::from_secs(60);

#[test]
fn obs_smoke() {
    let base = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("obs-smoke");
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<std::path::PathBuf> = (1..=2).map(|i| base.join(format!("p{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    // Boot 1 namespace + 2 providers; providers persist to disk and
    // append a stats snapshot to metrics.jsonl every 100 ms.
    let listeners: Vec<TcpListener> =
        (0..3).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback")).collect();
    let all_peers: Vec<PeerSpec> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| PeerSpec {
            id: NodeId::from_index(i),
            addr: l.local_addr().unwrap().to_string(),
            machine: i as u32,
        })
        .collect();
    let mut handles: Vec<daemon::DaemonHandle> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let cfg = DaemonConfig {
                node_id: NodeId::from_index(i),
                role: if i == 0 { Role::Namespace } else { Role::Provider },
                listen: all_peers[i].addr.clone(),
                data_dir: if i == 0 { None } else { Some(dirs[i - 1].clone()) },
                seed: 100 + i as u64,
                capacity: 1 << 30,
                machine: i as u32,
                rack: i as u32,
                costs: CostModel::fast_test(),
                chaos: Default::default(),
                metrics_interval_ms: if i == 0 { None } else { Some(100) },
                shard: 0,
                ns_shards: 1,
                ns_map: Vec::new(),
                ns_checkpoint_batches: None,
                membership: MembershipMode::Heartbeat,
                location: LocationScheme::Ring,
                peers: all_peers
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| p.clone())
                    .collect(),
            };
            daemon::spawn_with_listener(cfg, listener).expect("spawn daemon")
        })
        .collect();
    let cfg = CtlConfig {
        ctl_id: NodeId::from_index(1000),
        namespace: NodeId::from_index(0),
        seed: 7,
        replication: 2,
        costs: CostModel::fast_test(),
        write_chunk: None,
        write_window: 4,
        rpc_resends: 0,
        op_deadline_ms: None,
        ns_map: Vec::new(),
        membership: MembershipMode::Heartbeat,
        location: LocationScheme::Ring,
        peers: all_peers,
    };

    // Put some real traffic through so the scrape sees a working
    // cluster, not three idle processes.
    let mut fs = FsScript::new();
    let h = fs.create("/smoke").unwrap();
    fs.write(h, 0, (0..32 * 1024).map(|i| (i % 251) as u8).collect::<Vec<u8>>()).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 2, DEADLINE).expect("write script");
    assert_eq!(out.stats.failed_ops, 0, "write failed: {:?}", out.stats.last_error);

    // Scrape every node once, exactly as `sorrentoctl top` does, and
    // hold each versioned snapshot to the schema.
    for i in 0..3 {
        let json = ctl::fetch_stats(&cfg, NodeId::from_index(i), DEADLINE)
            .unwrap_or_else(|e| panic!("top scrape of n{i}: {e}"));
        check_stats_snapshot(&json).unwrap_or_else(|e| panic!("n{i} snapshot: {e}"));
        let snap = Json::parse(&json).unwrap();
        assert_eq!(snap.get("v").and_then(Json::as_u64), Some(STATS_SCHEMA_V));
        assert_eq!(snap.get("node").and_then(Json::as_u64), Some(i as u64));
    }

    // Kill provider 2: the abrupt path must still leave the black box.
    handles.pop().unwrap().kill().expect("abrupt kill");

    let dump = std::fs::read_dir(&dirs[1])
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("flight_"))
        .expect("killed provider left no flight_*.json");
    let text = std::fs::read_to_string(dump.path()).unwrap();
    check_flight_dump(&text).expect("killed provider's flight dump");

    // The periodic writer must have appended at least one snapshot by
    // now (100 ms interval, several seconds of uptime) — and every line
    // must validate, not just the first.
    let metrics_path = dirs[1].join("metrics.jsonl");
    let deadline = Instant::now() + Duration::from_secs(10);
    let lines = loop {
        let text = std::fs::read_to_string(&metrics_path).unwrap_or_default();
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        if !lines.is_empty() {
            break lines;
        }
        assert!(Instant::now() < deadline, "no metrics.jsonl snapshot appeared");
        std::thread::sleep(Duration::from_millis(100));
    };
    for (n, line) in lines.iter().enumerate() {
        check_stats_snapshot(line)
            .unwrap_or_else(|e| panic!("metrics.jsonl line {}: {e}", n + 1));
    }

    for h in handles {
        h.stop().expect("clean shutdown");
    }
}
