//! Live-cluster membership drill: real daemons over loopback TCP in
//! SWIM gossip mode. Kill a provider and watch the survivors walk it
//! through suspect → confirm; the healthy majority must stay `alive`
//! throughout (no false evictions from losing one peer).
//!
//! This is the `make membership-smoke` end-to-end leg; the protocol
//! properties themselves are exercised at scale in the simulator suite
//! (`tests/tests/membership.rs`).

use std::net::TcpListener;
use std::time::{Duration, Instant};

use sorrento::costs::CostModel;
use sorrento::locator::LocationScheme;
use sorrento::swim::MembershipMode;
use sorrento_json::Json;
use sorrento_net::config::{CtlConfig, DaemonConfig, PeerSpec, Role};
use sorrento_net::ctl;
use sorrento_net::daemon::{self, DaemonHandle};
use sorrento_sim::NodeId;

const DEADLINE: Duration = Duration::from_secs(60);

/// Boot a namespace daemon (node 0) plus `providers` provider daemons,
/// all in SWIM membership mode, on ephemeral loopback ports.
fn spawn_swim_cluster(providers: usize) -> (Vec<DaemonHandle>, CtlConfig) {
    let n = providers + 1;
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let all_peers: Vec<PeerSpec> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| PeerSpec {
            id: NodeId::from_index(i),
            addr: l.local_addr().unwrap().to_string(),
            machine: i as u32,
        })
        .collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let cfg = DaemonConfig {
                node_id: NodeId::from_index(i),
                role: if i == 0 { Role::Namespace } else { Role::Provider },
                listen: all_peers[i].addr.clone(),
                data_dir: None,
                seed: 900 + i as u64,
                capacity: 1 << 30,
                machine: i as u32,
                rack: i as u32,
                costs: CostModel::fast_test(),
                chaos: Default::default(),
                metrics_interval_ms: None,
                shard: 0,
                ns_shards: 1,
                ns_map: Vec::new(),
                ns_checkpoint_batches: None,
                membership: MembershipMode::Swim,
                location: LocationScheme::Ring,
                peers: all_peers
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| p.clone())
                    .collect(),
            };
            daemon::spawn_with_listener(cfg, listener).expect("spawn daemon")
        })
        .collect();
    let ctl_cfg = CtlConfig {
        ctl_id: NodeId::from_index(1000),
        namespace: NodeId::from_index(0),
        seed: 7,
        replication: 1,
        costs: CostModel::fast_test(),
        write_chunk: None,
        write_window: 4,
        rpc_resends: 2,
        op_deadline_ms: Some(20_000),
        ns_map: Vec::new(),
        membership: MembershipMode::Swim,
        location: LocationScheme::Ring,
        peers: all_peers,
    };
    (handles, ctl_cfg)
}

/// Parse a `members` reply and return the reported state of `node`
/// (`None` if the member is not in the view at all).
fn state_of(json: &str, node: NodeId) -> Option<String> {
    let v = Json::parse(json).expect("members reply parses");
    for m in v.get("members").and_then(Json::as_arr)? {
        if m.get("node").and_then(Json::as_u64) == Some(node.index() as u64) {
            return m.get("state").and_then(Json::as_str).map(str::to_owned);
        }
    }
    None
}

/// Poll `observer`'s view of `victim` until `pred` holds, failing after
/// the deadline with the last view seen.
fn wait_for_state(
    cfg: &CtlConfig,
    observer: NodeId,
    victim: NodeId,
    pred: impl Fn(Option<&str>) -> bool,
    what: &str,
) -> String {
    let start = Instant::now();
    let mut last = String::from("(no reply yet)");
    while start.elapsed() < DEADLINE {
        if let Ok(json) = ctl::fetch_members(cfg, observer, Duration::from_secs(5)) {
            let st = state_of(&json, victim);
            if pred(st.as_deref()) {
                return json;
            }
            last = format!("victim state {st:?}");
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    panic!("timed out waiting for {what}; last: {last}");
}

#[test]
fn live_suspect_confirm_drill() {
    let (mut handles, ctl_cfg) = spawn_swim_cluster(3);
    let observer = NodeId::from_index(1);
    let victim = NodeId::from_index(3);

    // Gossip must first converge: the observer's view shows the victim
    // alive (seeds start alive, so also wait for a real payload-carrying
    // table entry via the members report being complete).
    wait_for_state(&ctl_cfg, observer, victim, |s| s == Some("alive"), "initial convergence");

    // Kill the last provider without ceremony.
    handles.pop().unwrap().kill().expect("kill provider");

    // The survivor must walk the victim to dead (a fast poll can catch
    // the intermediate `suspect`, but timing may skip past it — only
    // the verdict is asserted).
    let json = wait_for_state(
        &ctl_cfg,
        observer,
        victim,
        |s| s == Some("dead"),
        "suspect→confirm of the killed provider",
    );

    // No collateral damage: every other member is still alive.
    let v = Json::parse(&json).unwrap();
    for m in v.get("members").and_then(Json::as_arr).unwrap() {
        let node = m.get("node").and_then(Json::as_u64).unwrap();
        let state = m.get("state").and_then(Json::as_str).unwrap();
        if node != victim.index() as u64 {
            assert_eq!(state, "alive", "live node n{node} was {state}");
        }
    }

    for h in handles {
        let _ = h.stop();
    }
}
