//! End-to-end data-path integration tests: real bytes written through the
//! full protocol stack (namespace → placement → shadows → 2PC → reads via
//! home hosts) must come back exactly, across every organization mode.

use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::layout::ATTACH_MAX;
use sorrento::types::{FileOptions, Organization};
use sorrento_sim::Dur;

fn small_cluster(seed: u64) -> Cluster {
    ClusterBuilder::new()
        .providers(4)
        .seed(seed)
        .costs(CostModel::fast_test())
        .build()
}

fn run_script(cluster: &mut Cluster, ops: Vec<ClientOp>) -> sorrento::client::ClientStats {
    let id = cluster.add_client(ScriptedWorkload::new(ops));
    cluster.run_for(Dur::secs(300));
    cluster.client_stats(id).unwrap().clone()
}

fn patterned(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31) ^ seed).collect()
}

#[test]
fn small_file_attach_roundtrip() {
    let mut cluster = small_cluster(11);
    let data = patterned(1000, 3);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Create { path: "/tiny".into() },
            ClientOp::write_bytes(0, data.clone()),
            ClientOp::Close,
            ClientOp::Open { path: "/tiny".into(), write: false },
            ClientOp::Read { offset: 0, len: 1000 },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    assert_eq!(stats.last_read.as_deref(), Some(&data[..]));
    // An attached file creates no data segments: only the index segment
    // exists in the cluster.
    assert_eq!(cluster.segment_ownership().len(), 1);
}

#[test]
fn attach_to_segment_spill_preserves_contents() {
    let mut cluster = small_cluster(12);
    let first = patterned(1000, 1);
    let second = patterned(ATTACH_MAX as usize, 2);
    let total = 1000 + ATTACH_MAX;
    let mut expect = first.clone();
    expect.extend_from_slice(&second);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Create { path: "/grow".into() },
            ClientOp::write_bytes(0, first),
            // This write pushes the file past ATTACH_MAX: the attached
            // bytes must spill into a data segment without loss.
            ClientOp::write_bytes(1000, second),
            ClientOp::Close,
            ClientOp::Open { path: "/grow".into(), write: false },
            ClientOp::Read { offset: 0, len: total },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    assert_eq!(stats.last_read.as_deref(), Some(&expect[..]));
    // Index + one data segment.
    assert_eq!(cluster.segment_ownership().len(), 2);
}

#[test]
fn linear_multi_megabyte_roundtrip() {
    let mut cluster = small_cluster(13);
    // 2.5 MB crosses multiple 1 MB linear segments.
    let len = 2_621_440usize;
    let data = patterned(len, 7);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Create { path: "/big".into() },
            ClientOp::write_bytes(0, data.clone()),
            ClientOp::Close,
            ClientOp::Open { path: "/big".into(), write: false },
            ClientOp::Read { offset: 0, len: len as u64 },
            // Partial mid-file read crossing a segment boundary.
            ClientOp::Read { offset: 1_000_000, len: 200_000 },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    assert_eq!(
        stats.last_read.as_deref(),
        Some(&data[1_000_000..1_200_000])
    );
    assert_eq!(stats.bytes_read, len as u64 + 200_000);
}

#[test]
fn striped_mode_roundtrip() {
    let mut cluster = small_cluster(14);
    let options = FileOptions {
        organization: Organization::Striped {
            stripes: 4,
            max_size: 16 << 20,
        },
        ..FileOptions::default()
    };
    let len = 600_000usize; // > 9 stripe units of 64 KB
    let data = patterned(len, 9);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::CreateWith { path: "/striped".into(), options },
            ClientOp::write_bytes(0, data.clone()),
            ClientOp::Close,
            ClientOp::Open { path: "/striped".into(), write: false },
            ClientOp::Read { offset: 0, len: len as u64 },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    assert_eq!(stats.last_read.as_deref(), Some(&data[..]));
    // 4 stripes + index segment.
    assert_eq!(cluster.segment_ownership().len(), 5);
}

#[test]
fn hybrid_mode_roundtrip() {
    let mut cluster = small_cluster(15);
    let options = FileOptions {
        organization: Organization::Hybrid { group_stripes: 2 },
        ..FileOptions::default()
    };
    // 3 MB: group 0 (2 × 1 MB) plus part of group 1.
    let len = 3 << 20;
    let data = patterned(len, 5);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::CreateWith { path: "/hybrid".into(), options },
            ClientOp::write_bytes(0, data.clone()),
            ClientOp::Close,
            ClientOp::Open { path: "/hybrid".into(), write: false },
            ClientOp::Read { offset: 0, len: len as u64 },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    assert_eq!(stats.last_read.as_deref(), Some(&data[..]));
}

#[test]
fn overwrite_advances_version_and_content() {
    let mut cluster = small_cluster(16);
    let v1 = patterned(200_000, 1);
    let mut v2 = v1.clone();
    v2[100_000..100_050].copy_from_slice(&[0xAB; 50]);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Create { path: "/f".into() },
            ClientOp::write_bytes(0, v1),
            ClientOp::Close,
            ClientOp::Open { path: "/f".into(), write: true },
            ClientOp::write_bytes(100_000, vec![0xAB; 50]),
            ClientOp::Close,
            ClientOp::Open { path: "/f".into(), write: false },
            ClientOp::Read { offset: 0, len: 200_000 },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    assert_eq!(stats.last_read.as_deref(), Some(&v2[..]));
}

#[test]
fn sync_commits_without_closing() {
    let mut cluster = small_cluster(17);
    let data = patterned(100_000, 4);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Create { path: "/s".into() },
            ClientOp::write_bytes(0, data.clone()),
            ClientOp::Sync,
            // Keep writing after sync: a second version.
            ClientOp::write_bytes(0, vec![0xCD; 10]),
            ClientOp::Close,
            ClientOp::Open { path: "/s".into(), write: false },
            ClientOp::Read { offset: 0, len: 10 },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    assert_eq!(stats.last_read.as_deref(), Some(&[0xCD; 10][..]));
}

#[test]
fn unlink_removes_entry_and_segments() {
    let mut cluster = small_cluster(18);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Create { path: "/gone".into() },
            ClientOp::write_bytes(0, patterned(2 << 20, 8)),
            ClientOp::Close,
            ClientOp::Unlink { path: "/gone".into() },
            // The entry must be gone.
            ClientOp::Stat { path: "/gone".into() },
        ],
    );
    // Everything succeeds except the final stat.
    assert_eq!(stats.failed_ops, 1);
    assert_eq!(stats.last_error, Some(sorrento::Error::NotFound));
    // Eager replica removal: no segments left anywhere.
    cluster.run_for(Dur::secs(10));
    assert_eq!(cluster.segment_ownership().len(), 0);
}

#[test]
fn mkdir_list_nested() {
    let mut cluster = small_cluster(19);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Mkdir { path: "/a".into() },
            ClientOp::Mkdir { path: "/a/b".into() },
            ClientOp::Create { path: "/a/x".into() },
            ClientOp::Close,
            ClientOp::List { path: "/a".into() },
        ],
    );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    let listing = String::from_utf8(stats.last_read.clone().unwrap_or_default().to_vec());
    // Reads store data; list results land in last_read via the blob.
    assert!(listing.is_ok());
}

#[test]
fn synthetic_files_track_sizes_without_bytes() {
    let mut cluster = small_cluster(20);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Create { path: "/synth".into() },
            ClientOp::write_synth(0, 8 << 20),
            ClientOp::Close,
            ClientOp::Open { path: "/synth".into(), write: false },
            ClientOp::Read { offset: 0, len: 8 << 20 },
            ClientOp::Close,
            ClientOp::Stat { path: "/synth".into() },
        ],
    );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    assert_eq!(stats.bytes_read, 8 << 20);
    assert_eq!(stats.bytes_written, 8 << 20);
    // Providers' disks account the synthetic bytes.
    let total: u64 = cluster
        .provider_disk_usage()
        .iter()
        .map(|(_, used, _)| used)
        .sum();
    assert!(total >= 8 << 20, "disk accounted {total}");
}

#[test]
fn deterministic_runs_with_same_seed() {
    let run = |seed| {
        let mut cluster = small_cluster(seed);
        let stats = run_script(
            &mut cluster,
            vec![
                ClientOp::Create { path: "/d".into() },
                ClientOp::write_bytes(0, patterned(500_000, 2)),
                ClientOp::Close,
                ClientOp::Open { path: "/d".into(), write: false },
                ClientOp::Read { offset: 0, len: 500_000 },
                ClientOp::Close,
            ],
        );
        stats
            .latencies
            .iter()
            .map(|(k, d)| (*k, d.as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78)); // different seeds → different timings
}
