//! End-to-end tests against a *real* loopback cluster: namespace and
//! provider daemons on ephemeral TCP ports, driven through the
//! `sorrentoctl` library entry points. Same state machines as the
//! simulator tests — but over actual sockets, threads, and wall-clock
//! timers.

use std::net::TcpListener;
use std::time::Duration;

use sorrento::api::FsScript;
use sorrento::costs::CostModel;
use sorrento::types::FileOptions;
use sorrento_kvdb::{Db, DbConfig, FileBackend};
use sorrento::locator::LocationScheme;
use sorrento::swim::MembershipMode;
use sorrento_net::config::{CtlConfig, DaemonConfig, PeerSpec, Role};
use sorrento_net::ctl;
use sorrento_net::daemon::{self, DaemonHandle};
use sorrento_net::frame::decode_image_bytes;
use sorrento_sim::NodeId;

const DEADLINE: Duration = Duration::from_secs(60);

/// Boot one namespace daemon (node 0) and `providers` provider daemons
/// (nodes 1..=providers) on ephemeral loopback ports. `data_dirs[i]`
/// gives provider `i + 1` persistent segment storage.
fn spawn_cluster(
    providers: usize,
    data_dirs: &[Option<std::path::PathBuf>],
) -> (Vec<DaemonHandle>, CtlConfig) {
    let n = providers + 1;
    // Bind everything first so every config can carry real addresses.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let all_peers: Vec<PeerSpec> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| PeerSpec {
            id: NodeId::from_index(i),
            addr: l.local_addr().unwrap().to_string(),
            machine: i as u32,
        })
        .collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let cfg = DaemonConfig {
                node_id: NodeId::from_index(i),
                role: if i == 0 { Role::Namespace } else { Role::Provider },
                listen: all_peers[i].addr.clone(),
                data_dir: if i == 0 { None } else { data_dirs.get(i - 1).cloned().flatten() },
                seed: 100 + i as u64,
                capacity: 1 << 30,
                machine: i as u32,
                rack: i as u32,
                costs: CostModel::fast_test(),
                chaos: Default::default(),
                metrics_interval_ms: None,
                shard: 0,
                ns_shards: 1,
                ns_map: Vec::new(),
                ns_checkpoint_batches: None,
                membership: MembershipMode::Heartbeat,
                location: LocationScheme::Ring,
                peers: all_peers
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| p.clone())
                    .collect(),
            };
            daemon::spawn_with_listener(cfg, listener).expect("spawn daemon")
        })
        .collect();
    let ctl_cfg = CtlConfig {
        ctl_id: NodeId::from_index(1000),
        namespace: NodeId::from_index(0),
        seed: 7,
        replication: 1,
        costs: CostModel::fast_test(),
        write_chunk: None,
        write_window: 4,
        rpc_resends: 0,
        op_deadline_ms: None,
        ns_map: Vec::new(),
        membership: MembershipMode::Heartbeat,
        location: LocationScheme::Ring,
        peers: all_peers,
    };
    (handles, ctl_cfg)
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

#[test]
fn loopback_cluster_survives_a_provider_failure() {
    let (mut handles, cfg) = spawn_cluster(3, &[]);
    let data = payload(32 * 1024);

    // Create and write with two replicas, committed eagerly so both
    // replicas exist by the time close returns.
    let mut fs = FsScript::new();
    fs.mkdir("/d").unwrap();
    let h = fs
        .create_with(
            "/d/report",
            FileOptions { replication: 2, eager_commit: true, ..FileOptions::default() },
        )
        .unwrap();
    fs.write(h, 0, data.clone()).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 3, DEADLINE).expect("write script");
    assert_eq!(out.stats.failed_ops, 0, "write failed: {:?}", out.stats.last_error);

    // Read it back through a fresh client session.
    let mut fs = FsScript::new();
    let h = fs.open("/d/report", false).unwrap();
    fs.read(h, 0, data.len() as u64).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 3, DEADLINE).expect("read script");
    assert_eq!(out.stats.failed_ops, 0, "read failed: {:?}", out.stats.last_error);
    assert_eq!(out.stats.last_read.as_deref(), Some(&data[..]), "readback mismatch");

    // Stats are served live by the namespace daemon, as JSON.
    let json = ctl::fetch_stats(&cfg, NodeId::from_index(0), DEADLINE).expect("stats");
    let parsed = sorrento_json::Json::parse(&json).expect("stats JSON parses");
    let gauges = parsed.get("gauges").expect("stats JSON has a gauges section");
    assert!(gauges.get("net_sent").is_some(), "stats JSON missing mesh counters: {json}");

    // Kill one provider. With two replicas on three providers, at least
    // one replica survives whichever daemon dies; the client recovers
    // through its RPC timeout and owner-retry path.
    handles.pop().unwrap().stop().expect("clean provider shutdown");

    let mut fs = FsScript::new();
    let h = fs.open("/d/report", false).unwrap();
    fs.read(h, 0, data.len() as u64).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 2, DEADLINE).expect("read after kill");
    assert_eq!(
        out.stats.failed_ops, 0,
        "read after provider death failed: {:?}",
        out.stats.last_error
    );
    assert_eq!(out.stats.last_read.as_deref(), Some(&data[..]), "post-failure readback mismatch");

    // Remove the file and confirm it is gone.
    let mut fs = FsScript::new();
    fs.unlink("/d/report").unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 2, DEADLINE).expect("rm script");
    assert_eq!(out.stats.failed_ops, 0, "rm failed: {:?}", out.stats.last_error);

    let mut fs = FsScript::new();
    fs.stat("/d/report").unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 2, DEADLINE).expect("stat script");
    assert_eq!(out.stats.failed_ops, 1, "stat of a removed file should fail");

    for h in handles {
        h.stop().expect("clean shutdown");
    }
}

/// Write `data` to `path` through a client configured from `cfg`, then
/// read it back through a plain (unchunked) client and return the bytes.
fn write_then_read(
    cfg: &CtlConfig,
    read_cfg: &CtlConfig,
    path: &str,
    data: &[u8],
    min_providers: usize,
) -> Vec<u8> {
    let mut fs = FsScript::new();
    let h = fs
        .create_with(
            path,
            FileOptions { replication: 2, eager_commit: true, ..FileOptions::default() },
        )
        .unwrap();
    fs.write(h, 0, data.to_vec()).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(cfg, fs.into_ops(), min_providers, DEADLINE).expect("write script");
    assert_eq!(out.stats.failed_ops, 0, "write of {path} failed: {:?}", out.stats.last_error);

    let mut fs = FsScript::new();
    let h = fs.open(path, false).unwrap();
    fs.read(h, 0, data.len() as u64).unwrap();
    fs.close(h).unwrap();
    let out =
        ctl::run_script(read_cfg, fs.into_ops(), min_providers, DEADLINE).expect("read script");
    assert_eq!(out.stats.failed_ops, 0, "read of {path} failed: {:?}", out.stats.last_error);
    out.stats.last_read.as_deref().unwrap_or_default().to_vec()
}

#[test]
fn pipelined_chunked_writes_match_unchunked_writes() {
    let (handles, plain) = spawn_cluster(3, &[]);
    // Large enough to detach into real extents and split into many
    // chunks: 768 KiB at a 32 KiB chunk is 24 chunks per extent write.
    let data = payload(768 * 1024);

    // Distinct seeds: each run_script builds a fresh client, and two
    // clients with the same seed would allocate colliding segment ids
    // for different files.
    let mut serial = plain.clone();
    serial.seed = 8;
    serial.write_chunk = Some(32 * 1024);
    serial.write_window = 1;
    let mut windowed = plain.clone();
    windowed.seed = 9;
    windowed.write_chunk = Some(32 * 1024);
    windowed.write_window = 4;

    // Same payload through three client configurations. Every readback
    // (done by an unchunked control client) must be byte-identical.
    let got_plain = write_then_read(&plain, &plain, "/pipe-plain", &data, 3);
    let got_serial = write_then_read(&serial, &plain, "/pipe-serial", &data, 3);
    let got_windowed = write_then_read(&windowed, &plain, "/pipe-windowed", &data, 3);
    assert_eq!(got_plain, data, "unchunked control readback mismatch");
    assert_eq!(got_serial, data, "window=1 chunked readback mismatch");
    assert_eq!(got_windowed, data, "window=4 chunked readback mismatch");

    // All three commit the same file shape: stat sizes must agree.
    let mut fs = FsScript::new();
    fs.stat("/pipe-plain").unwrap();
    fs.stat("/pipe-serial").unwrap();
    fs.stat("/pipe-windowed").unwrap();
    let out = ctl::run_script(&plain, fs.into_ops(), 3, DEADLINE).expect("stat script");
    assert_eq!(out.stats.failed_ops, 0, "stat failed: {:?}", out.stats.last_error);
    let sizes: Vec<u64> = out.records.iter().map(|r| r.bytes).collect();
    assert_eq!(sizes, vec![data.len() as u64; 3], "committed sizes diverge");

    for h in handles {
        h.stop().expect("clean shutdown");
    }
}

#[test]
fn pipelined_write_survives_provider_death_mid_window() {
    let (mut handles, plain) = spawn_cluster(4, &[]);
    let mut cfg = plain.clone();
    cfg.write_chunk = Some(8 * 1024);
    cfg.write_window = 2;
    // 2 MiB at 8 KiB chunks: hundreds of in-flight round trips, so the
    // concurrent kill lands while the window is open.
    let data = payload(2 << 20);

    // Kill one provider shortly after the write script starts. With
    // replication 2 on four providers the client rides out the death via
    // its RPC-timeout retry path, whether the chunks targeting the
    // victim were already acknowledged or die with it.
    let victim = handles.pop().unwrap();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(1500));
        victim.stop()
    });
    let got = write_then_read(&cfg, &plain, "/pipe-churn", &data, 3);
    killer.join().expect("killer thread").expect("clean provider shutdown");
    assert_eq!(got, data, "chunked write corrupted by provider death");

    for h in handles {
        h.stop().expect("clean shutdown");
    }
}

#[test]
fn provider_persists_segments_for_restart() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("sorrento-persist");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let (handles, cfg) = spawn_cluster(1, &[Some(dir.clone())]);
    // Past ATTACH_MAX so the bytes detach into a real data segment
    // instead of riding inline in the index segment's JSON.
    let data = payload(96 * 1024);

    let mut fs = FsScript::new();
    let h = fs.create("/keep").unwrap();
    fs.write(h, 0, data.clone()).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 1, DEADLINE).expect("write script");
    assert_eq!(out.stats.failed_ops, 0, "write failed: {:?}", out.stats.last_error);

    // A clean stop persists every dirty segment and checkpoints the db.
    for h in handles {
        h.stop().expect("clean shutdown");
    }

    // Reopen the provider's database offline: the images must decode,
    // and one of them must carry the file's bytes.
    let db = Db::open(FileBackend::open(dir).unwrap(), DbConfig::default()).unwrap();
    let images: Vec<_> = db
        .scan_prefix(b"seg/")
        .map(|(_, v)| decode_image_bytes(v).expect("persisted image decodes"))
        .collect();
    assert!(images.len() >= 2, "expected an index and a data segment, got {}", images.len());
    assert!(
        images.iter().any(|img| img.data.as_deref() == Some(&data[..])),
        "no persisted segment carries the written bytes"
    );

    // The boot path installs these images back into a segment store —
    // prove the persisted form is installable, not just decodable.
    let mut prov = sorrento::provider::StorageProvider::new(CostModel::fast_test(), 2);
    let now = sorrento_sim::SimTime::from_nanos(0);
    for img in images {
        let seg = img.seg;
        let version = img.version;
        prov.store.install_replica(img, now).expect("image installs");
        let round = prov.store.export(seg, Some(version)).expect("installed segment exports");
        assert_eq!(round.version, version);
    }
}
