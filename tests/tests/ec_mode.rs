//! Erasure-coding integration tests: striped EC commit with parity,
//! degraded reads through Reed-Solomon reconstruction, and shard repair
//! after provider loss — first in the seeded simulator, then as a
//! loopback TCP chaos drill (`make ec-smoke`).

use std::collections::{BTreeMap, BTreeSet};
use std::net::TcpListener;
use std::time::{Duration, Instant};

use sorrento::api::FsScript;
use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::types::{FileOptions, SegId};
use sorrento_kvdb::{Db, DbConfig, FileBackend};
use sorrento_net::chaos::ChaosConfig;
use sorrento::locator::LocationScheme;
use sorrento::swim::MembershipMode;
use sorrento_net::config::{CtlConfig, DaemonConfig, PeerSpec, Role};
use sorrento_net::ctl;
use sorrento_net::daemon::{self, DaemonHandle};
use sorrento_sim::{Dur, NodeId};

fn cluster(providers: usize, seed: u64) -> Cluster {
    ClusterBuilder::new()
        .providers(providers)
        .replication(2) // applies to the index segment only for EC files
        .seed(seed)
        .costs(CostModel::fast_test())
        .build()
}

fn patterned(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(13) ^ seed).collect()
}

/// EC options with a replicated index segment (`FileOptions::replication`
/// governs the index alone for EC files; the shards are singly stored).
fn ec_options(k: u8, m: u8) -> FileOptions {
    FileOptions {
        replication: 2,
        ..FileOptions::erasure_coded(k, m, 4 << 20)
    }
}

/// Segments with exactly one owner are the EC shards (the index segment
/// is replicated); returns `(seg, owner)` pairs.
fn shard_sites(c: &Cluster) -> Vec<(SegId, NodeId)> {
    let mut v: Vec<(SegId, NodeId)> = c
        .segment_ownership()
        .into_iter()
        .filter(|(_, owners)| owners.len() == 1)
        .map(|(seg, owners)| (seg, owners[0].0))
        .collect();
    v.sort();
    v
}

/// Up to `n` providers that own shards but no replica of the index
/// segment — safe crash victims: killing them severs shards without
/// severing the file's index (which both degraded reads and the repair
/// scan need; shard loss with the index intact is exactly the failure
/// EC is specified to survive).
fn shard_only_victims(c: &Cluster, n: usize) -> Vec<NodeId> {
    let index_owners: Vec<NodeId> = c
        .segment_ownership()
        .into_iter()
        .filter(|(_, owners)| owners.len() > 1)
        .flat_map(|(_, owners)| owners.into_iter().map(|(p, _)| p))
        .collect();
    let mut victims: Vec<NodeId> = shard_sites(c)
        .iter()
        .map(|&(_, p)| p)
        .filter(|p| !index_owners.contains(p))
        .collect();
    victims.sort();
    victims.dedup();
    victims.truncate(n);
    victims
}

/// An EC(2,1) file written and read back through the normal path equals
/// the bytes written, and the commit materializes exactly k data + m
/// parity shards on distinct providers, each singly stored.
#[test]
fn ec_write_read_roundtrip_with_parity() {
    let mut c = cluster(5, 11);
    let data = patterned(300_000, 1);
    let options = ec_options(2, 1);
    let id = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::CreateWith { path: "/ec".into(), options },
        ClientOp::write_bytes(0, data.clone()),
        ClientOp::Close,
        ClientOp::Open { path: "/ec".into(), write: false },
        ClientOp::Read { offset: 0, len: data.len() as u64 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let st = c.client_stats(id).unwrap();
    assert_eq!(st.failed_ops, 0, "EC roundtrip failed: {:?}", st.last_error);
    assert_eq!(st.last_read.as_deref(), Some(&data[..]));
    // k + m = 3 singly-stored shards, all on distinct providers.
    let shards = shard_sites(&c);
    assert_eq!(shards.len(), 3, "expected 3 shards: {shards:?}");
    let mut sites: Vec<NodeId> = shards.iter().map(|&(_, p)| p).collect();
    sites.sort();
    sites.dedup();
    assert_eq!(sites.len(), 3, "shards share a provider: {shards:?}");
}

/// Rewriting an EC file re-encodes parity: the read after the second
/// commit sees the second contents.
#[test]
fn ec_rewrite_reencodes_parity() {
    let mut c = cluster(6, 12);
    let first = patterned(200_000, 3);
    let second = patterned(260_000, 7);
    let options = ec_options(3, 2);
    let id = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::CreateWith { path: "/ec2".into(), options },
        ClientOp::write_bytes(0, first),
        ClientOp::Close,
        ClientOp::Open { path: "/ec2".into(), write: true },
        ClientOp::write_bytes(0, second.clone()),
        ClientOp::Close,
        ClientOp::Open { path: "/ec2".into(), write: false },
        ClientOp::Read { offset: 0, len: second.len() as u64 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(90));
    let st = c.client_stats(id).unwrap();
    if st.failed_ops > 0 {
        for &(span, kind) in &st.failed_spans {
            eprintln!("failed op kind={kind}\n{}", c.trace_op(span));
        }
    }
    assert_eq!(st.failed_ops, 0, "EC rewrite failed: {:?}", st.last_error);
    assert_eq!(st.last_read.as_deref(), Some(&second[..]));
}

/// With shard holders dead (up to m of them), reads reconstruct the
/// missing shards inline from the k survivors.
#[test]
fn ec_degraded_read_survives_m_failures() {
    let mut c = cluster(8, 13);
    let data = patterned(500_000, 5);
    let options = ec_options(4, 2);
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::CreateWith { path: "/big".into(), options },
        ClientOp::write_bytes(0, data.clone()),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0);
    let shards = shard_sites(&c);
    assert_eq!(shards.len(), 6);
    // Kill two shard holders (m = 2 losses), keeping the index alive.
    let victims = shard_only_victims(&c, 2);
    assert_eq!(victims.len(), 2, "shards under-spread: {shards:?}");
    for &v in &victims {
        c.crash_provider_at(c.now(), v);
    }
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/big".into(), write: false },
        ClientOp::Read { offset: 0, len: data.len() as u64 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let st = c.client_stats(reader).unwrap();
    assert_eq!(st.failed_ops, 0, "degraded read failed: {:?}", st.last_error);
    assert_eq!(st.last_read.as_deref(), Some(&data[..]));
}

/// After shard loss, the index holder reconstructs the lost shards from
/// survivors and installs them on fresh providers: the full k + m shard
/// count returns, on distinct live providers, and the data still reads
/// back exactly.
#[test]
fn ec_repair_restores_full_shard_count() {
    let mut c = cluster(9, 14);
    let data = patterned(400_000, 9);
    let options = ec_options(4, 2);
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::CreateWith { path: "/heal".into(), options },
        ClientOp::write_bytes(0, data.clone()),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0);
    let before = shard_sites(&c);
    assert_eq!(before.len(), 6);
    let victims = shard_only_victims(&c, 2);
    assert_eq!(victims.len(), 2, "shards under-spread: {before:?}");
    for &v in &victims {
        c.crash_provider_at(c.now(), v);
    }
    // Death declaration + repair scan + reconstruct + install.
    c.run_for(Dur::secs(120));
    let after = shard_sites(&c);
    let before_segs: Vec<SegId> = before.iter().map(|&(s, _)| s).collect();
    let after_segs: Vec<SegId> = after.iter().map(|&(s, _)| s).collect();
    let counters = [
        "provider.ec_repairs",
        "provider.ec_repair_aborts",
        "provider.ec_repair_timeouts",
        "provider.ec_unrecoverable",
    ]
    .map(|k| (k, c.metrics().counter(k)));
    assert_eq!(
        after_segs, before_segs,
        "repair did not restore every shard: {after:?} ({counters:?})"
    );
    for &(seg, p) in &after {
        assert!(!victims.contains(&p), "{seg:?} still on dead {p:?}");
    }
    let repaired: u64 = c
        .providers()
        .iter()
        .filter_map(|&p| c.provider_ref(p))
        .map(|prov| prov.ec_repairs_done)
        .sum();
    assert!(repaired >= 2, "no provider drove the EC repair");
    // The healed file reads back without reconstruction pressure.
    let reader = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::Open { path: "/heal".into(), write: false },
        ClientOp::Read { offset: 0, len: data.len() as u64 },
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(60));
    let st = c.client_stats(reader).unwrap();
    assert_eq!(st.failed_ops, 0, "post-repair read failed: {:?}", st.last_error);
    assert_eq!(st.last_read.as_deref(), Some(&data[..]));
}

/// Losing more than m shard holders is unrecoverable — the repair path
/// must recognize that and not thrash (no hang, no bogus installs).
#[test]
fn ec_more_than_m_losses_is_detected_not_thrashed() {
    let mut c = cluster(9, 15);
    let options = ec_options(4, 2);
    let writer = c.add_client(ScriptedWorkload::new(vec![
        ClientOp::CreateWith { path: "/gone".into(), options },
        ClientOp::write_bytes(0, patterned(300_000, 2)),
        ClientOp::Close,
    ]));
    c.run_for(Dur::secs(30));
    assert_eq!(c.client_stats(writer).unwrap().failed_ops, 0);
    let shards = shard_sites(&c);
    let victims = shard_only_victims(&c, 3); // m + 1 losses
    // Only meaningful when the shards actually spread over ≥ 3 nodes.
    assert!(victims.len() >= 3, "shards under-spread: {shards:?}");
    for &v in &victims {
        c.crash_provider_at(c.now(), v);
    }
    c.run_for(Dur::secs(120));
    assert!(
        c.metrics().counter("provider.ec_unrecoverable") >= 1,
        "unrecoverable loss never classified"
    );
    assert_eq!(
        c.metrics().counter("provider.ec_repairs"),
        0,
        "repair installed shards it could not have reconstructed"
    );
}

// ---------------------------------------------------------------------
// Loopback TCP drill (`make ec-smoke`): a real 8-provider cluster under
// deterministic frame chaos writes an EC(4,2) file, two shard holders
// are killed abruptly, reads must reconstruct through the loss, and the
// repair scan must restore the full k + m shard count on live disks —
// with no client ever hanging.
// ---------------------------------------------------------------------

const DRILL_DEADLINE: Duration = Duration::from_secs(90);
/// The fixed drill seeds (`make ec-smoke` runs exactly these).
const DRILL_SEEDS: [u64; 2] = [21, 1105];
const PROVIDERS: usize = 10;

/// `fast_test` timing with a much shorter location-refresh cycle: the
/// drill restarts the whole fleet (wiping every soft-state location
/// table), and repair decisions should run against warm tables rather
/// than burn the drill deadline waiting out a 30 s refresh stagger.
fn drill_costs() -> CostModel {
    CostModel {
        refresh_interval: sorrento_sim::Dur::secs(3),
        join_refresh_delay_max: sorrento_sim::Dur::secs(1),
        location_gc_age: sorrento_sim::Dur::secs(20),
        ..CostModel::fast_test()
    }
}

fn drill_payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 37 % 249) as u8).collect()
}

fn drill_daemon_cfg(
    i: usize,
    all_peers: &[PeerSpec],
    data_dir: Option<std::path::PathBuf>,
) -> DaemonConfig {
    DaemonConfig {
        node_id: NodeId::from_index(i),
        role: if i == 0 { Role::Namespace } else { Role::Provider },
        listen: all_peers[i].addr.clone(),
        data_dir,
        seed: 300 + i as u64,
        capacity: 1 << 30,
        machine: i as u32,
        rack: i as u32,
        costs: drill_costs(),
        chaos: Default::default(),
        metrics_interval_ms: None,
        shard: 0,
        ns_shards: 1,
        ns_map: Vec::new(),
        ns_checkpoint_batches: None,
                membership: MembershipMode::Heartbeat,
                location: LocationScheme::Ring,
        peers: all_peers
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, p)| p.clone())
            .collect(),
    }
}

fn drill_bind_retry(addr: &str) -> TcpListener {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot rebind {addr}: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Read until the bytes converge to `want`. Typed per-attempt errors
/// are retried; a *hung* client (workload unfinished past its own
/// deadline) fails the drill immediately.
fn drill_read_until(cfg: &CtlConfig, path: &str, want: &[u8], min_providers: usize, what: &str) {
    let deadline = Instant::now() + DRILL_DEADLINE;
    loop {
        let mut fs = FsScript::new();
        let h = fs.open(path, false).unwrap();
        fs.read(h, 0, want.len() as u64).unwrap();
        fs.close(h).unwrap();
        let err = match ctl::run_script(cfg, fs.into_ops(), min_providers, Duration::from_secs(25))
        {
            Ok(out) if out.stats.failed_ops == 0 => {
                assert_eq!(out.stats.last_read.as_deref(), Some(want), "{what}: bytes differ");
                return;
            }
            Ok(out) => format!("{:?}", out.stats.last_error),
            Err(ctl::CtlError::Deadline(stats)) => {
                panic!("{what}: client hung ({} ops done): {stats:?}", stats.completed_ops)
            }
            Err(e) => e.to_string(),
        };
        assert!(
            Instant::now() < deadline,
            "{what}: no convergence before the deadline (last error: {err})"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Total segment-replica count across `providers`, from each daemon's
/// `<node>.segments` gauge.
fn drill_replicas_held(cfg: &CtlConfig, providers: &[usize]) -> f64 {
    providers
        .iter()
        .map(|&i| {
            let json = ctl::fetch_stats(cfg, NodeId::from_index(i), Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("stats from n{i}: {e}"));
            sorrento_json::Json::parse(&json)
                .ok()
                .and_then(|j| j.get("gauges")?.get(&format!("n{i}.segments"))?.as_f64())
                .unwrap_or(0.0)
        })
        .sum()
}

/// The set of `seg/…` keys persisted in one provider's data dir.
fn drill_disk_segs(dir: &std::path::Path) -> BTreeSet<Vec<u8>> {
    let db = Db::open(FileBackend::open(dir.to_path_buf()).unwrap(), DbConfig::default()).unwrap();
    db.scan_prefix(b"seg/").map(|(k, _)| k.to_vec()).collect()
}

fn run_ec_drill(seed: u64) {
    let base = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("ec-drill-{seed}"));
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<std::path::PathBuf> =
        (1..=PROVIDERS).map(|i| base.join(format!("p{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    // Bind everything first so every config carries real addresses.
    let n = PROVIDERS + 1;
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback")).collect();
    let all_peers: Vec<PeerSpec> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| PeerSpec {
            id: NodeId::from_index(i),
            addr: l.local_addr().unwrap().to_string(),
            machine: i as u32,
        })
        .collect();
    let mut handles: Vec<Option<DaemonHandle>> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let dir = if i == 0 { None } else { Some(dirs[i - 1].clone()) };
            Some(
                daemon::spawn_with_listener(drill_daemon_cfg(i, &all_peers, dir), listener)
                    .expect("spawn daemon"),
            )
        })
        .collect();

    let cfg = CtlConfig {
        ctl_id: NodeId::from_index(1000),
        namespace: NodeId::from_index(0),
        seed: 9,
        replication: 2,
        costs: drill_costs(),
        write_chunk: None,
        write_window: 4,
        rpc_resends: 2,
        op_deadline_ms: Some(20_000),
        ns_map: Vec::new(),
        membership: MembershipMode::Heartbeat,
        location: LocationScheme::Ring,
        peers: all_peers.clone(),
    };

    // Mild deterministic chaos on every daemon: the EC commit is a wide
    // 2PC (k + m shards plus the index), so the drop rate is kept low
    // enough that convergence loops, not luck, absorb the loss.
    for i in 0..n {
        let chaos = ChaosConfig {
            seed: seed ^ i as u64,
            drop_permille: 30,
            dup_permille: 30,
            delay_permille: 20,
            delay: Duration::from_millis(2),
            partition: Vec::new(),
        };
        ctl::set_chaos(&cfg, NodeId::from_index(i), &chaos, DRILL_DEADLINE)
            .expect("install chaos rules");
    }

    // Create the EC(4,2) file (index replicated ×2), then write 256 KiB
    // — 64 KiB per data shard once striped over k = 4.
    let data = drill_payload(256 * 1024);
    let deadline = Instant::now() + DRILL_DEADLINE;
    loop {
        let mut fs = FsScript::new();
        let h = fs
            .create_with(
                "/ec-drill",
                FileOptions { replication: 2, ..FileOptions::erasure_coded(4, 2, 64 << 20) },
            )
            .unwrap();
        fs.close(h).unwrap();
        let out = ctl::run_script(&cfg, fs.into_ops(), PROVIDERS, Duration::from_secs(25))
            .expect("create under chaos: client did not finish");
        let ok = out.stats.failed_ops == 0
            || matches!(out.stats.last_error, Some(sorrento::types::Error::AlreadyExists));
        if ok {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: EC create never converged: {:?}",
            out.stats.last_error
        );
        std::thread::sleep(Duration::from_millis(200));
    }
    loop {
        let mut fs = FsScript::new();
        let h = fs.open("/ec-drill", true).unwrap();
        fs.write(h, 0, data.clone()).unwrap();
        fs.close(h).unwrap();
        let out = ctl::run_script(&cfg, fs.into_ops(), PROVIDERS, Duration::from_secs(25))
            .expect("EC write under chaos: client did not finish");
        if out.stats.failed_ops == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: EC write never converged: {:?}",
            out.stats.last_error
        );
        std::thread::sleep(Duration::from_millis(200));
    }
    drill_read_until(&cfg, "/ec-drill", &data, PROVIDERS, "EC read under chaos");

    // Stop every provider cleanly (each stop persists its segments) and
    // classify the disks: keys held by ≥ 2 dirs are the replicated index
    // segment; single-copy keys are EC shards. A chaos-dropped index
    // write is topped up asynchronously by the repair scan, so the
    // settled layout — six single-copy shards plus one replicated index
    // — may lag the successful read: cycle the fleet until the disks
    // show it. Victims must hold a shard and no index replica — shard
    // loss with the index intact is exactly the failure EC(4,2) is
    // specified to survive.
    let deadline = Instant::now() + DRILL_DEADLINE;
    let (per_dir, copies) = loop {
        for h in handles.iter_mut().take(n).skip(1) {
            h.take().unwrap().stop().expect("clean stop");
        }
        let per_dir: Vec<BTreeSet<Vec<u8>>> =
            dirs.iter().map(|d| drill_disk_segs(d)).collect();
        let mut copies: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
        for set in &per_dir {
            for k in set {
                *copies.entry(k.clone()).or_insert(0) += 1;
            }
        }
        let shards = copies.values().filter(|&&c| c == 1).count();
        let replicated = copies.values().filter(|&&c| c >= 2).count();
        if shards == 6 && replicated == 1 {
            break (per_dir, copies);
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: EC layout never settled on disk: {copies:?}"
        );
        for i in 1..n {
            let listener = drill_bind_retry(&all_peers[i].addr);
            handles[i] = Some(
                daemon::spawn_with_listener(
                    drill_daemon_cfg(i, &all_peers, Some(dirs[i - 1].clone())),
                    listener,
                )
                .expect("restart provider while layout settles"),
            );
        }
        // Long enough for a staggered location refresh (≤ 1 s + 3 s)
        // and a repair-scan round (1 s) to fire before the next audit.
        std::thread::sleep(Duration::from_secs(6));
    };
    let shard_keys: BTreeSet<&Vec<u8>> =
        copies.iter().filter(|&(_, &c)| c == 1).map(|(k, _)| k).collect();
    let victims: Vec<usize> = (0..PROVIDERS)
        .filter(|&p| {
            per_dir[p].iter().any(|k| shard_keys.contains(k))
                && per_dir[p].iter().all(|k| copies[k] == 1)
        })
        .map(|p| p + 1) // dir index → node index
        .take(2)
        .collect();
    assert_eq!(victims.len(), 2, "seed {seed}: no shard-only victims: {copies:?}");

    // Restart the full cluster on the same addresses, prove it serves,
    // then abruptly kill the two victims mid-run — no final persistence
    // sweep, no goodbye.
    for i in 1..n {
        let listener = drill_bind_retry(&all_peers[i].addr);
        handles[i] = Some(
            daemon::spawn_with_listener(
                drill_daemon_cfg(i, &all_peers, Some(dirs[i - 1].clone())),
                listener,
            )
            .expect("restart provider"),
        );
    }
    drill_read_until(&cfg, "/ec-drill", &data, PROVIDERS, "EC read after restart");
    // Let every provider's staggered location refresh fire once, so the
    // repair scan later classifies loss against warm tables instead of
    // mistaking a cold table for a dead shard.
    std::thread::sleep(Duration::from_secs(7));
    for &v in &victims {
        handles[v].take().unwrap().kill().expect("abrupt kill");
    }
    let survivors: Vec<usize> = (1..n).filter(|i| !victims.contains(i)).collect();

    // Degraded read: two shards are gone, so the bytes must come back
    // through Reed-Solomon reconstruction from the four survivors.
    drill_read_until(&cfg, "/ec-drill", &data, survivors.len(), "EC degraded read");

    // Repair, first pass: the live fleet's replica count returns to at
    // least 8 (6 shards + 2 index copies). The gauge can over-count — a
    // scan racing cold location tables may install a harmless extra copy
    // before the true losses are declared dead — so this is a cheap
    // wait, not the verdict.
    let deadline = Instant::now() + DRILL_DEADLINE;
    loop {
        let held = drill_replicas_held(&cfg, &survivors);
        if held >= 8.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: EC repair never restored the shard count ({held} replicas held)"
        );
        std::thread::sleep(Duration::from_millis(250));
    }
    drill_read_until(&cfg, "/ec-drill", &data, survivors.len(), "EC read after repair");

    // Repair, ground truth: every segment of the file — all six shards
    // and the index — must end up on a live (non-victim) provider's
    // disk. Stop the survivors cleanly (persisting their stores), audit
    // the disks, and cycle them back up until the audit passes: each
    // cycle gives the repair scan a fresh round against a settled view.
    let deadline = Instant::now() + DRILL_DEADLINE;
    loop {
        std::thread::sleep(Duration::from_secs(2));
        for &i in &survivors {
            handles[i].take().unwrap().stop().expect("clean shutdown");
        }
        let live: BTreeSet<Vec<u8>> =
            survivors.iter().flat_map(|&i| drill_disk_segs(&dirs[i - 1])).collect();
        let missing: Vec<String> = copies
            .keys()
            .filter(|k| !live.contains(*k))
            .map(|k| String::from_utf8_lossy(k).into_owned())
            .collect();
        if missing.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: EC repair never restored {missing:?} onto a live disk"
        );
        for &i in &survivors {
            let listener = drill_bind_retry(&all_peers[i].addr);
            handles[i] = Some(
                daemon::spawn_with_listener(
                    drill_daemon_cfg(i, &all_peers, Some(dirs[i - 1].clone())),
                    listener,
                )
                .expect("restart survivor"),
            );
        }
    }
    if let Some(h) = handles[0].take() {
        h.stop().expect("namespace shutdown");
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn ec_loopback_drill_converges_for_fixed_seeds() {
    for seed in DRILL_SEEDS {
        run_ec_drill(seed);
    }
}
