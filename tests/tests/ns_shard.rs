//! Metadata-plane integration tests: namespace sharding and the
//! WAL-shipped hot standby, end to end through the simulated cluster.
//!
//! The partition function is pure arithmetic, so tests *compute* which
//! directories land on which shard and then build paths that force
//! same-shard and cross-shard variants of every metadata operation.

use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, ScriptedWorkload};
use sorrento::costs::CostModel;
use sorrento::nsmap::{shard_of_dir, shard_of_path};
use sorrento_sim::Dur;

fn sharded_cluster(seed: u64, shards: u32) -> Cluster {
    ClusterBuilder::new()
        .providers(4)
        .seed(seed)
        .costs(CostModel::fast_test())
        .ns_shards(shards)
        .build()
}

fn run_script(cluster: &mut Cluster, ops: Vec<ClientOp>) -> sorrento::client::ClientStats {
    let id = cluster.add_client(ScriptedWorkload::new(ops));
    cluster.run_for(Dur::secs(300));
    cluster.client_stats(id).unwrap().clone()
}

/// A root-level directory name whose *own* shard (where its children
/// live) is `k`, under `n` shards.
fn dir_on_shard(k: u32, n: u32) -> String {
    (0..)
        .map(|i| format!("/d{i}"))
        .find(|d| shard_of_dir(d, n) == k)
        .unwrap()
}

#[test]
fn sharded_namespace_serves_the_full_metadata_vocabulary() {
    let mut cluster = sharded_cluster(21, 4);
    let mut ops = Vec::new();
    // One directory homed on every shard, with a file in each: exercises
    // mkdir stubs, create-in-dir, stat, ls and unlink on all four shards.
    for k in 0..4 {
        let d = dir_on_shard(k, 4);
        ops.push(ClientOp::Mkdir { path: d.clone() });
        ops.push(ClientOp::Create { path: format!("{d}/f") });
        ops.push(ClientOp::write_bytes(0, vec![k as u8; 256]));
        ops.push(ClientOp::Close);
        ops.push(ClientOp::Stat { path: format!("{d}/f") });
        ops.push(ClientOp::List { path: d.clone() });
    }
    let stats = run_script(&mut cluster, ops);
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    // Every shard holds at least its pre-created root; the directories
    // and files must have spread beyond one shard.
    let counts: Vec<usize> = (0..4)
        .map(|k| cluster.namespace_ref_of(k).unwrap().entry_count())
        .collect();
    assert!(counts.iter().all(|&c| c >= 1), "shard entry counts: {counts:?}");
    assert!(counts.iter().filter(|&&c| c > 1).count() >= 2, "no spread: {counts:?}");
}

#[test]
fn cross_shard_mkdir_rename_and_remove() {
    let n = 2;
    let mut cluster = sharded_cluster(22, n);
    // src dir and dst dir on *different* shards forces the rename
    // transfer handshake; a directory whose stub lives off-shard forces
    // the mkdir/remove handshakes.
    let d0 = dir_on_shard(0, n);
    let d1 = dir_on_shard(1, n);
    assert_ne!(shard_of_dir(&d0, n), shard_of_dir(&d1, n));
    // Root-level entries all live on shard_of_dir("/"); each directory's
    // children live on its own shard — so at least one of d0/d1 has its
    // entry and its child-set on different shards (cross-shard mkdir).
    let root_shard = shard_of_path(&d0, n);
    assert!(shard_of_dir(&d0, n) != root_shard || shard_of_dir(&d1, n) != root_shard);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Mkdir { path: d0.clone() },
            ClientOp::Mkdir { path: d1.clone() },
            ClientOp::Create { path: format!("{d0}/f") },
            ClientOp::write_bytes(0, b"cross-shard".to_vec()),
            ClientOp::Close,
            // Cross-shard rename: the entry moves from d0's shard to d1's.
            ClientOp::Rename { src: format!("{d0}/f"), dst: format!("{d1}/g") },
            ClientOp::Stat { path: format!("{d1}/g") },
            // Data survives the metadata move.
            ClientOp::Open { path: format!("{d1}/g"), write: false },
            ClientOp::Read { offset: 0, len: 11 },
            ClientOp::Close,
            // Source is gone; source dir is now empty and removable
            // (check-empty + stub-drop handshake).
            ClientOp::Unlink { path: format!("{d1}/g") },
            ClientOp::Unlink { path: d0.clone() },
            ClientOp::Unlink { path: d1.clone() },
        ],
        );
    assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
    assert_eq!(stats.last_read.as_deref(), Some(&b"cross-shard"[..]));
    // Everything except the pre-created roots is cleaned up again.
    for k in 0..n as usize {
        assert_eq!(cluster.namespace_ref_of(k).unwrap().entry_count(), 1);
    }
}

#[test]
fn stat_of_renamed_source_fails_and_dirs_refuse_rename() {
    let n = 2;
    let mut cluster = sharded_cluster(23, n);
    let d0 = dir_on_shard(0, n);
    let d1 = dir_on_shard(1, n);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Mkdir { path: d0.clone() },
            ClientOp::Mkdir { path: d1.clone() },
            ClientOp::Create { path: format!("{d0}/f") },
            ClientOp::Close,
            ClientOp::Rename { src: format!("{d0}/f"), dst: format!("{d1}/g") },
            ClientOp::Stat { path: format!("{d0}/f") }, // gone from source shard
            ClientOp::Rename { src: d0.clone(), dst: format!("{d1}/sub") }, // dirs refuse
        ],
    );
    // Exactly the two deliberate failures.
    assert_eq!(stats.failed_ops, 2, "last error: {:?}", stats.last_error);
    assert_eq!(stats.completed_ops, 5);
}

/// The `ns_shards(1)` knob (and the absent knob) must be byte-identical:
/// same seed, same workload, same virtual-time event stream.
#[test]
fn single_shard_knob_is_byte_identical_to_default() {
    let run = |sharded_knob: bool| {
        let mut b = ClusterBuilder::new().providers(4).seed(77).costs(CostModel::fast_test());
        if sharded_knob {
            b = b.ns_shards(1);
        }
        let mut cluster = b.build();
        let ops = vec![
            ClientOp::Mkdir { path: "/w".into() },
            ClientOp::Create { path: "/w/a".into() },
            ClientOp::write_bytes(0, vec![7u8; 4096]),
            ClientOp::Close,
            ClientOp::Open { path: "/w/a".into(), write: false },
            ClientOp::Read { offset: 0, len: 4096 },
            ClientOp::Close,
            ClientOp::List { path: "/w".into() },
        ];
        let id = cluster.add_client(ScriptedWorkload::new(ops));
        cluster.run_for(Dur::secs(120));
        let stats = cluster.client_stats(id).unwrap();
        assert_eq!(stats.failed_ops, 0, "last error: {:?}", stats.last_error);
        let events: Vec<String> = cluster
            .sim
            .merged_events()
            .into_iter()
            .map(|(node, rec)| format!("{node} {} {}", rec.at.nanos(), rec.ev))
            .collect();
        (stats.clone().latencies, events)
    };
    let (lat_a, ev_a) = run(false);
    let (lat_b, ev_b) = run(true);
    assert_eq!(lat_a, lat_b);
    assert_eq!(ev_a, ev_b);
}

#[test]
fn standby_takes_over_after_primary_crash() {
    let mut cluster = ClusterBuilder::new()
        .providers(4)
        .seed(31)
        .costs(CostModel::fast_test())
        .ns_shards(1)
        .ns_standby(true)
        .ns_checkpoint_every(4)
        .build();
    // Seed some namespace state through the primary.
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Mkdir { path: "/live".into() },
            ClientOp::Create { path: "/live/a".into() },
            ClientOp::write_bytes(0, b"survives failover".to_vec()),
            ClientOp::Close,
            ClientOp::Create { path: "/live/b".into() },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "seed phase: {:?}", stats.last_error);
    // Let at least one WAL shipment drain to the standby, then kill the
    // primary.
    cluster.run_for(Dur::secs(2));
    let primary = cluster.ns_shard_nodes()[0];
    let at = cluster.now() + Dur::millis(1);
    cluster.sim.crash_at(at, primary);
    cluster.run_for(Dur::secs(5));
    // The standby noticed the missed shipment deadline and promoted.
    let standby = cluster.ns_standby_ref_of(0).unwrap();
    assert!(!standby.is_standby(), "standby never promoted");
    assert!(standby.entry_count() >= 4, "promoted with {} entries", standby.entry_count());
    assert_eq!(cluster.metrics().counter("ns.failovers"), 1);
    // A fresh client times out against the dead primary, flips its route
    // to the standby, and reads the pre-crash namespace and data back.
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Stat { path: "/live/b".into() },
            ClientOp::Open { path: "/live/a".into(), write: false },
            ClientOp::Read { offset: 0, len: 17 },
            ClientOp::Close,
            ClientOp::Create { path: "/live/c".into() },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "post-failover: {:?}", stats.last_error);
    assert_eq!(stats.last_read.as_deref(), Some(&b"survives failover"[..]));
}

#[test]
fn sharded_plane_with_standbys_survives_one_shard_loss() {
    let n = 2;
    let mut cluster = ClusterBuilder::new()
        .providers(4)
        .seed(33)
        .costs(CostModel::fast_test())
        .ns_shards(n)
        .ns_standby(true)
        .ns_checkpoint_every(8)
        .build();
    let d0 = dir_on_shard(0, n);
    let d1 = dir_on_shard(1, n);
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Mkdir { path: d0.clone() },
            ClientOp::Mkdir { path: d1.clone() },
            ClientOp::Create { path: format!("{d0}/f") },
            ClientOp::Close,
            ClientOp::Create { path: format!("{d1}/f") },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "seed phase: {:?}", stats.last_error);
    cluster.run_for(Dur::secs(2));
    // Kill shard 0's primary only. Shard 1 is untouched.
    let victim = cluster.ns_shard_nodes()[0];
    let at = cluster.now() + Dur::millis(1);
    cluster.sim.crash_at(at, victim);
    cluster.run_for(Dur::secs(5));
    assert!(!cluster.ns_standby_ref_of(0).unwrap().is_standby());
    let stats = run_script(
        &mut cluster,
        vec![
            ClientOp::Stat { path: format!("{d0}/f") }, // failed-over shard
            ClientOp::Stat { path: format!("{d1}/f") }, // healthy shard
            ClientOp::Create { path: format!("{d0}/g") },
            ClientOp::Close,
        ],
    );
    assert_eq!(stats.failed_ops, 0, "post-failover: {:?}", stats.last_error);
}
