//! Property-based tests over the core data structures: the file layout
//! mapping, the versioned segment store, and the hash ring under churn.

use std::collections::HashMap;

use proptest::prelude::*;
use sorrento::layout::{IndexSegment, WritePlan};
use sorrento::ring::HashRing;
use sorrento::store::{LocalStore, SegMeta, WritePayload};
use sorrento::types::{FileOptions, Organization, SegId, Version};
use sorrento_sim::{Dur, NodeId, SimTime};

fn organizations() -> impl Strategy<Value = Organization> {
    prop_oneof![
        Just(Organization::Linear),
        (1u32..6, 1u64..64).prop_map(|(stripes, mb)| Organization::Striped {
            stripes,
            max_size: mb << 20,
        }),
        (1u32..5).prop_map(|group_stripes| Organization::Hybrid { group_stripes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the organization mode, a write plan's extents tile the
    /// requested range exactly: consecutive, non-overlapping, and
    /// summing to the request length; and each extent stays within its
    /// segment's capacity for that mode.
    #[test]
    fn write_plans_tile_requests(
        org in organizations(),
        offset in 0u64..(8 << 20),
        len in 1u64..(16 << 20),
    ) {
        // Striped mode cannot exceed its declared max size.
        let (offset, len) = match org {
            Organization::Striped { max_size, .. } => {
                let off = offset.min(max_size.saturating_sub(1));
                (off, len.min(max_size - off).max(1))
            }
            _ => (offset, len),
        };
        let options = FileOptions { organization: org, ..FileOptions::default() };
        let mut ix = IndexSegment::new(sorrento::types::FileId(1), options);
        let mut n = 0u64;
        let plan = ix.plan_write(offset, len, || {
            n += 1;
            SegId::derive(1, n, 0)
        });
        match plan {
            WritePlan::Attached => {
                prop_assert!(offset + len <= sorrento::layout::ATTACH_MAX);
            }
            WritePlan::Extents { detach_bytes, extents } => {
                prop_assert_eq!(detach_bytes, 0); // fresh file: nothing attached
                let mut cursor = offset;
                for e in &extents {
                    prop_assert_eq!(e.file_offset, cursor);
                    prop_assert!(e.len > 0);
                    cursor += e.len;
                }
                prop_assert_eq!(cursor, offset + len);
            }
        }
    }

    /// After writing and applying, locate() maps any sub-range onto
    /// extents that tile it, referencing only segments the plan created.
    #[test]
    fn locate_is_consistent_with_plan(
        org in organizations(),
        len in 1u64..(8 << 20),
        probe_off in 0u64..(8 << 20),
        probe_len in 1u64..(4 << 20),
    ) {
        let len = match org {
            Organization::Striped { max_size, .. } => len.min(max_size),
            _ => len,
        };
        let options = FileOptions { organization: org, ..FileOptions::default() };
        let mut ix = IndexSegment::new(sorrento::types::FileId(1), options);
        let mut n = 0u64;
        ix.plan_write(0, len, || {
            n += 1;
            SegId::derive(1, n, 0)
        });
        ix.apply_write(0, len);
        let known: Vec<SegId> = ix.segments.iter().map(|e| e.seg).collect();
        let extents = ix.locate(probe_off, probe_len);
        let end = (probe_off + probe_len).min(ix.size);
        if ix.is_attached || probe_off >= end {
            prop_assert!(extents.is_empty());
        } else {
            let mut cursor = probe_off;
            for e in &extents {
                prop_assert_eq!(e.file_offset, cursor);
                prop_assert!(known.contains(&e.seg));
                cursor += e.len;
            }
            prop_assert_eq!(cursor, end);
        }
    }

    /// The store behaves like a flat byte array across arbitrary
    /// write/commit interleavings (shadow COW + consolidation must never
    /// corrupt visible data).
    #[test]
    fn store_matches_flat_model(
        keep in 1usize..4,
        batches in prop::collection::vec(
            prop::collection::vec((0u64..4096, 1u64..512), 1..4),
            1..8,
        ),
    ) {
        let mut store = LocalStore::new(keep);
        let seg = SegId::derive(9, 1, 0);
        let mut model: Vec<u8> = Vec::new();
        let mut version = Version::INITIAL;
        let now = SimTime::ZERO;
        for (b, writes) in batches.iter().enumerate() {
            let shadow = if version == Version::INITIAL {
                store.open_fresh_shadow(seg, SegMeta::default(), now, Dur::secs(60))
            } else {
                store.open_shadow(seg, version, now, Dur::secs(60)).unwrap()
            };
            for (i, &(off, len)) in writes.iter().enumerate() {
                let fill = (b * 16 + i + 1) as u8;
                let data = vec![fill; len as usize];
                store.write_shadow(shadow, off, WritePayload::Real(data.clone().into())).unwrap();
                if model.len() < (off + len) as usize {
                    model.resize((off + len) as usize, 0);
                }
                model[off as usize..(off + len) as usize].copy_from_slice(&data);
            }
            version = version.next();
            store.commit_shadow(shadow, version, now).unwrap();
            // The latest version always matches the model exactly.
            let out = store.read(seg, None, 0, model.len() as u64 + 64).unwrap();
            prop_assert_eq!(out.version, version);
            prop_assert_eq!(out.data.as_deref().unwrap(), &model[..]);
        }
    }

    /// Hash ring: every key has a home; across any membership change the
    /// keys that keep both endpoints alive move only if their old home
    /// departed or a new node claimed them.
    #[test]
    fn ring_minimal_disruption(
        providers in prop::collection::btree_set(0usize..64, 2..20),
        removed_idx in any::<prop::sample::Index>(),
        keys in prop::collection::vec(any::<u64>(), 50),
    ) {
        let providers: Vec<NodeId> = providers.into_iter().map(NodeId::from_index).collect();
        let removed = providers[removed_idx.index(providers.len())];
        let after: Vec<NodeId> = providers.iter().copied().filter(|&p| p != removed).collect();
        let ring_before = HashRing::build(providers.clone());
        let ring_after = HashRing::build(after);
        let mut moved: HashMap<NodeId, u32> = HashMap::new();
        for &k in &keys {
            let seg = SegId::derive(2, k, k);
            let b = ring_before.home(seg).unwrap();
            let a = ring_after.home(seg).unwrap();
            prop_assert_ne!(a, removed);
            if a != b {
                // Only keys homed on the removed node may move.
                prop_assert_eq!(b, removed);
                *moved.entry(a).or_default() += 1;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Milestone pinning under random commit/pin/unpin churn: a pinned
    /// version's bytes never change and never disappear, no matter how
    /// aggressively consolidation runs around it.
    #[test]
    fn pinned_versions_are_immortal_and_immutable(
        keep in 1usize..3,
        script in prop::collection::vec(
            prop_oneof![
                4 => (0u64..2048, 1u64..256).prop_map(|(o, l)| PinOp::Commit(o, l)),
                1 => Just(PinOp::PinLatest),
                1 => Just(PinOp::UnpinOldest),
            ],
            2..24,
        ),
    ) {
        use sorrento::store::{LocalStore, SegMeta, WritePayload};
        use sorrento::types::Version;
        let mut store = LocalStore::new(keep);
        let seg = SegId::derive(3, 1, 0);
        let now = SimTime::ZERO;
        let mut version = Version::INITIAL;
        let mut snapshots: Vec<(Version, Vec<u8>)> = Vec::new();
        let mut pinned: Vec<Version> = Vec::new();
        let mut model: Vec<u8> = Vec::new();
        for (n, op) in script.iter().enumerate() {
            match op {
                PinOp::Commit(off, len) => {
                    let shadow = if version == Version::INITIAL {
                        store.open_fresh_shadow(seg, SegMeta::default(), now, Dur::secs(60))
                    } else {
                        store.open_shadow(seg, version, now, Dur::secs(60)).unwrap()
                    };
                    let fill = (n as u8).wrapping_add(1);
                    let data = vec![fill; *len as usize];
                    store.write_shadow(shadow, *off, WritePayload::Real(data.clone().into())).unwrap();
                    if model.len() < (*off + *len) as usize {
                        model.resize((*off + *len) as usize, 0);
                    }
                    model[*off as usize..(*off + *len) as usize].copy_from_slice(&data);
                    version = version.next_entropic(n as u16);
                    store.commit_shadow(shadow, version, now).unwrap();
                }
                PinOp::PinLatest => {
                    if version != Version::INITIAL {
                        store.pin_version(seg, version).unwrap();
                        if !pinned.contains(&version) {
                            pinned.push(version);
                            snapshots.push((version, model.clone()));
                        }
                    }
                }
                PinOp::UnpinOldest => {
                    if let Some(&v) = pinned.first() {
                        store.unpin_version(seg, v);
                        pinned.remove(0);
                        snapshots.retain(|(sv, _)| *sv != v);
                    }
                }
            }
            // Every still-pinned snapshot reads back byte-exact.
            for (v, bytes) in &snapshots {
                let out = store.read(seg, Some(*v), 0, bytes.len() as u64 + 16).unwrap();
                prop_assert_eq!(out.data.as_deref().unwrap(), &bytes[..], "pinned {:?}", v);
            }
            // And the latest always matches the model.
            if version != Version::INITIAL {
                let out = store.read(seg, None, 0, model.len() as u64 + 16).unwrap();
                prop_assert_eq!(out.data.as_deref().unwrap(), &model[..]);
            }
        }
    }
}

#[derive(Debug, Clone)]
enum PinOp {
    Commit(u64, u64),
    PinLatest,
    UnpinOldest,
}

// ---------------------------------------------------------------------
// At-least-once delivery: a resilient client re-sends a mutation until
// it sees the reply, so servers must treat a replayed `(client,
// request-id)` as the *same* request — answer it from the reply cache,
// never apply it twice. The properties below deliver arbitrary mutation
// programs once and with every message duplicated, and require both the
// replies and the final server state to be identical.
// ---------------------------------------------------------------------

use sorrento::costs::CostModel;
use sorrento::namespace::NamespaceServer;
use sorrento::provider::StorageProvider;
use sorrento::proto::{Msg, ReqId};
use sorrento::types::FileId;
use sorrento_net::runtime::{Out, RealCtx};

const CLIENT: usize = 9;

fn ctx_for(node: usize) -> RealCtx {
    let mut machines = HashMap::new();
    machines.insert(NodeId::from_index(node), 0);
    machines.insert(NodeId::from_index(CLIENT), 1);
    RealCtx::new(NodeId::from_index(node), 1, 1 << 30, machines)
}

/// Render a message for comparison across two runs: `Debug`, with
/// wall-clock fields (`created_ns`/`modified_ns`, stamped from the real
/// clock and so never equal between runs) blanked out. Within one run
/// replies are compared verbatim — a cached replay includes the
/// original timestamps.
fn scrub(msg: &Msg) -> String {
    let s = format!("{msg:?}");
    let mut out = String::with_capacity(s.len());
    let mut rest = s.as_str();
    while let Some(pos) = rest.find("_ns: ") {
        let (head, tail) = rest.split_at(pos + 5);
        out.push_str(head);
        out.push('_');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Replies the context queued for the client, keyed by request id and
/// rendered through [`scrub`]. Every replay of one request id must
/// repeat the first reply verbatim — the exact property reply caching
/// provides.
fn reply_map(
    ctx: &mut RealCtx,
    req_of: impl Fn(&Msg) -> Option<ReqId>,
) -> HashMap<ReqId, String> {
    let mut verbatim: HashMap<ReqId, String> = HashMap::new();
    let mut map: HashMap<ReqId, String> = HashMap::new();
    for out in ctx.drain_outbox() {
        let Out::Unicast(dst, msg) = out else { continue };
        if dst != NodeId::from_index(CLIENT) {
            continue;
        }
        let Some(req) = req_of(&msg) else { continue };
        let rendered = format!("{msg:?}");
        match verbatim.get(&req) {
            Some(first) => assert_eq!(first, &rendered, "replayed req {req} got a different reply"),
            None => {
                verbatim.insert(req, rendered);
                map.insert(req, scrub(&msg));
            }
        }
    }
    map
}

fn ns_req_of(msg: &Msg) -> Option<ReqId> {
    match msg {
        Msg::NsCreateR { req, .. } | Msg::NsMkdirR { req, .. } | Msg::NsRemoveR { req, .. } => {
            Some(*req)
        }
        _ => None,
    }
}

/// One namespace mutation over a tiny path pool (collisions intended:
/// create-after-create and remove-after-remove exercise the error
/// replies, which must be cached too).
#[derive(Debug, Clone)]
enum NsMut {
    Create(&'static str),
    Mkdir(&'static str),
    Remove(&'static str),
}

fn ns_paths() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("/a"), Just("/b"), Just("/d"), Just("/d/x")]
}

fn ns_muts() -> impl Strategy<Value = Vec<(NsMut, u8)>> {
    prop::collection::vec(
        (
            prop_oneof![
                ns_paths().prop_map(NsMut::Create),
                ns_paths().prop_map(NsMut::Mkdir),
                ns_paths().prop_map(NsMut::Remove),
            ],
            1u8..4, // delivery count: 1 = exactly-once baseline behavior
        ),
        1..12,
    )
}

fn ns_msg(i: usize, m: &NsMut) -> Msg {
    let req = i as ReqId + 1;
    match m {
        NsMut::Create(p) => Msg::NsCreate {
            req,
            path: (*p).to_owned(),
            file: FileId(i as u128 + 1),
            options: FileOptions::default(),
        },
        NsMut::Mkdir(p) => Msg::NsMkdir { req, path: (*p).to_owned() },
        NsMut::Remove(p) => Msg::NsRemove { req, path: (*p).to_owned() },
    }
}

/// Drive a fresh namespace server, delivering message `i` of the
/// program `dups[i]` times (1 = once). Returns (replies, state probe).
fn ns_run(program: &[(NsMut, u8)], dup: bool) -> (HashMap<ReqId, String>, Vec<String>, usize) {
    let mut ctx = ctx_for(0);
    let mut ns = NamespaceServer::new(CostModel::fast_test());
    let client = NodeId::from_index(CLIENT);
    for (i, (m, dups)) in program.iter().enumerate() {
        let n = if dup { *dups } else { 1 };
        for _ in 0..n {
            ns.handle_message(client, ns_msg(i, m), &mut ctx);
        }
    }
    let replies = reply_map(&mut ctx, ns_req_of);
    // Probe the tree through the protocol itself (fresh req ids).
    for (j, p) in ["/", "/a", "/b", "/d", "/d/x"].iter().enumerate() {
        let req = 10_000 + j as ReqId;
        ns.handle_message(client, Msg::NsList { req, path: (*p).to_owned() }, &mut ctx);
        ns.handle_message(client, Msg::NsLookup { req: req + 100, path: (*p).to_owned() }, &mut ctx);
    }
    let probe: Vec<String> = ctx
        .drain_outbox()
        .into_iter()
        .filter_map(|o| match o {
            Out::Unicast(dst, m) if dst == client => Some(scrub(&m)),
            _ => None,
        })
        .collect();
    (replies, probe, ns.entry_count())
}

fn prov_req_of(msg: &Msg) -> Option<ReqId> {
    match msg {
        Msg::DirectWriteR { req, .. } => Some(*req),
        _ => None,
    }
}

/// Drive a fresh provider through direct writes, each delivered
/// `dups[i]` times. Returns (replies, per-segment latest version +
/// bytes).
type SegSnapshot = Vec<(Option<Version>, Option<Vec<u8>>)>;

fn prov_run(program: &[(u8, u16, u16, u8)], dup: bool) -> (HashMap<ReqId, String>, SegSnapshot) {
    let mut ctx = ctx_for(1);
    let mut prov = StorageProvider::new(CostModel::fast_test(), 2);
    let client = NodeId::from_index(CLIENT);
    let segs: Vec<SegId> = (0..3).map(|n| SegId::derive(7, n, 0)).collect();
    for (i, &(s, offset, len, dups)) in program.iter().enumerate() {
        let seg = segs[s as usize % segs.len()];
        let fill = (i as u8).wrapping_mul(37).wrapping_add(s);
        let payload = WritePayload::Real(bytes::Bytes::from(vec![fill; len as usize]));
        let msg = Msg::DirectWrite {
            req: i as ReqId + 1,
            seg,
            offset: offset as u64,
            payload,
            meta: SegMeta::from_options(&FileOptions::default(), false),
        };
        let n = if dup { dups } else { 1 };
        for _ in 0..n {
            prov.handle_message(client, msg.clone(), &mut ctx);
        }
    }
    let replies = reply_map(&mut ctx, prov_req_of);
    let snap: SegSnapshot = segs
        .iter()
        .map(|&seg| {
            let v = prov.store.latest(seg);
            let d = prov
                .store
                .export(seg, None)
                .ok()
                .and_then(|img| img.data.map(|b| b.as_ref().to_vec()));
            (v, d)
        })
        .collect();
    (replies, snap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Namespace mutations are idempotent under replay: delivering each
    /// message N times yields the same replies (success *and* error)
    /// and the same tree as delivering each exactly once.
    #[test]
    fn ns_replay_equals_once(program in ns_muts()) {
        let (once_replies, once_probe, once_count) = ns_run(&program, false);
        let (dup_replies, dup_probe, dup_count) = ns_run(&program, true);
        prop_assert_eq!(once_replies, dup_replies);
        prop_assert_eq!(once_probe, dup_probe);
        prop_assert_eq!(once_count, dup_count);
    }

    /// Provider direct writes are idempotent under replay: versions
    /// advance once per *distinct* request, and the stored bytes match
    /// exactly-once delivery.
    #[test]
    fn provider_replay_equals_once(
        program in prop::collection::vec((0u8..3, 0u16..512, 1u16..256, 1u8..4), 1..10),
    ) {
        let (once_replies, once_snap) = prov_run(&program, false);
        let (dup_replies, dup_snap) = prov_run(&program, true);
        prop_assert_eq!(once_replies, dup_replies);
        prop_assert_eq!(once_snap, dup_snap);
    }
}
