//! Property-based tests over the core data structures: the file layout
//! mapping, the versioned segment store, and the hash ring under churn.

use std::collections::HashMap;

use proptest::prelude::*;
use sorrento::layout::{IndexSegment, WritePlan};
use sorrento::ring::HashRing;
use sorrento::store::{LocalStore, SegMeta, WritePayload};
use sorrento::types::{FileOptions, Organization, SegId, Version};
use sorrento_sim::{Dur, NodeId, SimTime};

fn organizations() -> impl Strategy<Value = Organization> {
    prop_oneof![
        Just(Organization::Linear),
        (1u32..6, 1u64..64).prop_map(|(stripes, mb)| Organization::Striped {
            stripes,
            max_size: mb << 20,
        }),
        (1u32..5).prop_map(|group_stripes| Organization::Hybrid { group_stripes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the organization mode, a write plan's extents tile the
    /// requested range exactly: consecutive, non-overlapping, and
    /// summing to the request length; and each extent stays within its
    /// segment's capacity for that mode.
    #[test]
    fn write_plans_tile_requests(
        org in organizations(),
        offset in 0u64..(8 << 20),
        len in 1u64..(16 << 20),
    ) {
        // Striped mode cannot exceed its declared max size.
        let (offset, len) = match org {
            Organization::Striped { max_size, .. } => {
                let off = offset.min(max_size.saturating_sub(1));
                (off, len.min(max_size - off).max(1))
            }
            _ => (offset, len),
        };
        let options = FileOptions { organization: org, ..FileOptions::default() };
        let mut ix = IndexSegment::new(sorrento::types::FileId(1), options);
        let mut n = 0u64;
        let plan = ix.plan_write(offset, len, || {
            n += 1;
            SegId::derive(1, n, 0)
        });
        match plan {
            WritePlan::Attached => {
                prop_assert!(offset + len <= sorrento::layout::ATTACH_MAX);
            }
            WritePlan::Extents { detach_bytes, extents } => {
                prop_assert_eq!(detach_bytes, 0); // fresh file: nothing attached
                let mut cursor = offset;
                for e in &extents {
                    prop_assert_eq!(e.file_offset, cursor);
                    prop_assert!(e.len > 0);
                    cursor += e.len;
                }
                prop_assert_eq!(cursor, offset + len);
            }
        }
    }

    /// After writing and applying, locate() maps any sub-range onto
    /// extents that tile it, referencing only segments the plan created.
    #[test]
    fn locate_is_consistent_with_plan(
        org in organizations(),
        len in 1u64..(8 << 20),
        probe_off in 0u64..(8 << 20),
        probe_len in 1u64..(4 << 20),
    ) {
        let len = match org {
            Organization::Striped { max_size, .. } => len.min(max_size),
            _ => len,
        };
        let options = FileOptions { organization: org, ..FileOptions::default() };
        let mut ix = IndexSegment::new(sorrento::types::FileId(1), options);
        let mut n = 0u64;
        ix.plan_write(0, len, || {
            n += 1;
            SegId::derive(1, n, 0)
        });
        ix.apply_write(0, len);
        let known: Vec<SegId> = ix.segments.iter().map(|e| e.seg).collect();
        let extents = ix.locate(probe_off, probe_len);
        let end = (probe_off + probe_len).min(ix.size);
        if ix.is_attached || probe_off >= end {
            prop_assert!(extents.is_empty());
        } else {
            let mut cursor = probe_off;
            for e in &extents {
                prop_assert_eq!(e.file_offset, cursor);
                prop_assert!(known.contains(&e.seg));
                cursor += e.len;
            }
            prop_assert_eq!(cursor, end);
        }
    }

    /// The store behaves like a flat byte array across arbitrary
    /// write/commit interleavings (shadow COW + consolidation must never
    /// corrupt visible data).
    #[test]
    fn store_matches_flat_model(
        keep in 1usize..4,
        batches in prop::collection::vec(
            prop::collection::vec((0u64..4096, 1u64..512), 1..4),
            1..8,
        ),
    ) {
        let mut store = LocalStore::new(keep);
        let seg = SegId::derive(9, 1, 0);
        let mut model: Vec<u8> = Vec::new();
        let mut version = Version::INITIAL;
        let now = SimTime::ZERO;
        for (b, writes) in batches.iter().enumerate() {
            let shadow = if version == Version::INITIAL {
                store.open_fresh_shadow(seg, SegMeta::default(), now, Dur::secs(60))
            } else {
                store.open_shadow(seg, version, now, Dur::secs(60)).unwrap()
            };
            for (i, &(off, len)) in writes.iter().enumerate() {
                let fill = (b * 16 + i + 1) as u8;
                let data = vec![fill; len as usize];
                store.write_shadow(shadow, off, WritePayload::Real(data.clone().into())).unwrap();
                if model.len() < (off + len) as usize {
                    model.resize((off + len) as usize, 0);
                }
                model[off as usize..(off + len) as usize].copy_from_slice(&data);
            }
            version = version.next();
            store.commit_shadow(shadow, version, now).unwrap();
            // The latest version always matches the model exactly.
            let out = store.read(seg, None, 0, model.len() as u64 + 64).unwrap();
            prop_assert_eq!(out.version, version);
            prop_assert_eq!(out.data.as_deref().unwrap(), &model[..]);
        }
    }

    /// Hash ring: every key has a home; across any membership change the
    /// keys that keep both endpoints alive move only if their old home
    /// departed or a new node claimed them.
    #[test]
    fn ring_minimal_disruption(
        providers in prop::collection::btree_set(0usize..64, 2..20),
        removed_idx in any::<prop::sample::Index>(),
        keys in prop::collection::vec(any::<u64>(), 50),
    ) {
        let providers: Vec<NodeId> = providers.into_iter().map(NodeId::from_index).collect();
        let removed = providers[removed_idx.index(providers.len())];
        let after: Vec<NodeId> = providers.iter().copied().filter(|&p| p != removed).collect();
        let ring_before = HashRing::build(providers.clone());
        let ring_after = HashRing::build(after);
        let mut moved: HashMap<NodeId, u32> = HashMap::new();
        for &k in &keys {
            let seg = SegId::derive(2, k, k);
            let b = ring_before.home(seg).unwrap();
            let a = ring_after.home(seg).unwrap();
            prop_assert_ne!(a, removed);
            if a != b {
                // Only keys homed on the removed node may move.
                prop_assert_eq!(b, removed);
                *moved.entry(a).or_default() += 1;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Milestone pinning under random commit/pin/unpin churn: a pinned
    /// version's bytes never change and never disappear, no matter how
    /// aggressively consolidation runs around it.
    #[test]
    fn pinned_versions_are_immortal_and_immutable(
        keep in 1usize..3,
        script in prop::collection::vec(
            prop_oneof![
                4 => (0u64..2048, 1u64..256).prop_map(|(o, l)| PinOp::Commit(o, l)),
                1 => Just(PinOp::PinLatest),
                1 => Just(PinOp::UnpinOldest),
            ],
            2..24,
        ),
    ) {
        use sorrento::store::{LocalStore, SegMeta, WritePayload};
        use sorrento::types::Version;
        let mut store = LocalStore::new(keep);
        let seg = SegId::derive(3, 1, 0);
        let now = SimTime::ZERO;
        let mut version = Version::INITIAL;
        let mut snapshots: Vec<(Version, Vec<u8>)> = Vec::new();
        let mut pinned: Vec<Version> = Vec::new();
        let mut model: Vec<u8> = Vec::new();
        for (n, op) in script.iter().enumerate() {
            match op {
                PinOp::Commit(off, len) => {
                    let shadow = if version == Version::INITIAL {
                        store.open_fresh_shadow(seg, SegMeta::default(), now, Dur::secs(60))
                    } else {
                        store.open_shadow(seg, version, now, Dur::secs(60)).unwrap()
                    };
                    let fill = (n as u8).wrapping_add(1);
                    let data = vec![fill; *len as usize];
                    store.write_shadow(shadow, *off, WritePayload::Real(data.clone().into())).unwrap();
                    if model.len() < (*off + *len) as usize {
                        model.resize((*off + *len) as usize, 0);
                    }
                    model[*off as usize..(*off + *len) as usize].copy_from_slice(&data);
                    version = version.next_entropic(n as u16);
                    store.commit_shadow(shadow, version, now).unwrap();
                }
                PinOp::PinLatest => {
                    if version != Version::INITIAL {
                        store.pin_version(seg, version).unwrap();
                        if !pinned.contains(&version) {
                            pinned.push(version);
                            snapshots.push((version, model.clone()));
                        }
                    }
                }
                PinOp::UnpinOldest => {
                    if let Some(&v) = pinned.first() {
                        store.unpin_version(seg, v);
                        pinned.remove(0);
                        snapshots.retain(|(sv, _)| *sv != v);
                    }
                }
            }
            // Every still-pinned snapshot reads back byte-exact.
            for (v, bytes) in &snapshots {
                let out = store.read(seg, Some(*v), 0, bytes.len() as u64 + 16).unwrap();
                prop_assert_eq!(out.data.as_deref().unwrap(), &bytes[..], "pinned {:?}", v);
            }
            // And the latest always matches the model.
            if version != Version::INITIAL {
                let out = store.read(seg, None, 0, model.len() as u64 + 16).unwrap();
                prop_assert_eq!(out.data.as_deref().unwrap(), &model[..]);
            }
        }
    }
}

#[derive(Debug, Clone)]
enum PinOp {
    Commit(u64, u64),
    PinLatest,
    UnpinOldest,
}
