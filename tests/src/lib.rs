//! Integration tests live in `tests/*.rs`.
//!
//! The library part holds the observability schema checkers: structural
//! validators for the two JSON artifacts the runtime emits — flight
//! recorder dumps (`flight_*.json`, also the `TraceR` payload) and v1
//! stats snapshots (`StatsR`, also each `metrics.jsonl` line). They are
//! the contract `make obs-smoke` and the observability tests hold the
//! daemons to: if a field is renamed or dropped, these fail before any
//! dashboard does.

use sorrento_json::Json;

/// Current flight-dump schema version these checkers understand.
pub const FLIGHT_SCHEMA_V: u64 = 1;
/// Current stats-snapshot schema version these checkers understand.
pub const STATS_SCHEMA_V: u64 = 1;

fn need_u64(j: &Json, key: &str, what: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what}: missing or non-integer {key:?}"))
}

fn need_str<'a>(j: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: missing or non-string {key:?}"))
}

/// Validate a flight-recorder dump (a `flight_*.json` file or a
/// `TraceR` reply) against the v1 schema.
pub fn check_flight_dump(json: &str) -> Result<(), String> {
    let j = Json::parse(json).map_err(|e| format!("flight dump: unparseable JSON: {e:?}"))?;
    let v = need_u64(&j, "v", "flight dump")?;
    if v != FLIGHT_SCHEMA_V {
        return Err(format!("flight dump: schema v{v}, expected v{FLIGHT_SCHEMA_V}"));
    }
    need_u64(&j, "node", "flight dump")?;
    need_str(&j, "role", "flight dump")?;
    need_u64(&j, "epoch_unix_ns", "flight dump")?;
    let cap = need_u64(&j, "cap", "flight dump")?;
    let len = need_u64(&j, "len", "flight dump")?;
    need_u64(&j, "dropped", "flight dump")?;
    if len > cap {
        return Err(format!("flight dump: len {len} exceeds cap {cap}"));
    }
    let events = j
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("flight dump: missing events array")?;
    if events.len() as u64 > len {
        return Err(format!(
            "flight dump: {} events but len claims {len} (filtered dumps may have fewer)",
            events.len()
        ));
    }
    let epoch = need_u64(&j, "epoch_unix_ns", "flight dump")?;
    for (i, ev) in events.iter().enumerate() {
        let what = format!("flight event #{i}");
        need_str(ev, "kind", &what)?;
        need_u64(ev, "span", &what)?;
        need_str(ev, "text", &what)?;
        let at = need_u64(ev, "at_ns", &what)?;
        let unix = need_u64(ev, "unix_ns", &what)?;
        if unix != epoch.saturating_add(at) {
            return Err(format!("{what}: unix_ns != epoch_unix_ns + at_ns"));
        }
    }
    Ok(())
}

/// Validate a v1 stats snapshot (a `StatsR` payload or one line of
/// `metrics.jsonl`) against the schema.
pub fn check_stats_snapshot(json: &str) -> Result<(), String> {
    let j = Json::parse(json).map_err(|e| format!("stats snapshot: unparseable JSON: {e:?}"))?;
    let v = need_u64(&j, "v", "stats snapshot")?;
    if v != STATS_SCHEMA_V {
        return Err(format!("stats snapshot: schema v{v}, expected v{STATS_SCHEMA_V}"));
    }
    need_u64(&j, "node", "stats snapshot")?;
    let role = need_str(&j, "role", "stats snapshot")?;
    if !matches!(role, "namespace" | "provider" | "ctl") {
        return Err(format!("stats snapshot: unknown role {role:?}"));
    }
    need_u64(&j, "uptime_ms", "stats snapshot")?;
    // The metrics registry keeps its pre-v1 top-level shape: consumers
    // that only ever read `gauges`/`counters` keep working unchanged.
    for section in ["counters", "gauges"] {
        if j.get(section).and_then(Json::as_obj).is_none() {
            return Err(format!("stats snapshot: missing {section:?} object"));
        }
    }
    let flight = j.get("flight").ok_or("stats snapshot: missing flight section")?;
    need_u64(flight, "len", "stats snapshot flight")?;
    need_u64(flight, "dropped", "stats snapshot flight")?;
    let slow = j
        .get("slow_ops")
        .and_then(Json::as_arr)
        .ok_or("stats snapshot: missing slow_ops array")?;
    for (i, op) in slow.iter().enumerate() {
        let what = format!("slow op #{i}");
        need_u64(op, "dur_us", &what)?;
        let span = need_u64(op, "span", &what)?;
        if span == 0 {
            return Err(format!("{what}: span 0 (background work must not be ranked)"));
        }
        need_str(op, "kind", &what)?;
        need_u64(op, "at_ns", &what)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkers_reject_garbage_and_wrong_versions() {
        assert!(check_flight_dump("not json").is_err());
        assert!(check_stats_snapshot("not json").is_err());
        assert!(check_flight_dump(r#"{"v":99}"#).is_err());
        assert!(check_stats_snapshot(r#"{"v":99}"#).is_err());
    }

    #[test]
    fn checkers_accept_minimal_valid_documents() {
        let flight = r#"{"v":1,"node":3,"role":"provider","epoch_unix_ns":10,
            "cap":4096,"len":1,"dropped":0,
            "events":[{"kind":"hb.send","span":0,"text":"hb.send seq=1",
                       "at_ns":5,"unix_ns":15}]}"#;
        check_flight_dump(flight).expect("valid flight dump");
        let stats = r#"{"v":1,"node":0,"role":"namespace","uptime_ms":12,
            "counters":{},"gauges":{"net_sent":3.0},
            "flight":{"len":1,"dropped":0},
            "slow_ops":[{"dur_us":9,"span":4294967297,"kind":"open","at_ns":7}]}"#;
        check_stats_snapshot(stats).expect("valid stats snapshot");
    }
}
