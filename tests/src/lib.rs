//! integration tests live in tests/*.rs
