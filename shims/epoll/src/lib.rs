//! Hermetic, dependency-free readiness polling for the Sorrento event
//! loop. The build environment has no crates.io access, so instead of
//! `mio` this shim binds the raw `epoll_create1`/`epoll_ctl`/
//! `epoll_wait` syscalls on Linux (through the libc symbols the Rust
//! standard library already links — no `libc` crate) and emulates the
//! same stateful-interest API over POSIX `poll(2)` on other Unixes.
//!
//! The API is the small slice an event loop actually needs:
//!
//! * [`Poller`] — a stateful interest list: register a file descriptor
//!   with a caller-chosen [`Token`] and an [`Interest`] (readable and/or
//!   writable), then [`Poller::wait`] for events. Level-triggered: a
//!   readiness condition keeps firing until it is drained or the
//!   interest is removed, so a loop can never lose an edge.
//! * [`Waker`] — an `eventfd` (Linux) or self-pipe (other Unix) that
//!   another thread writes to pull a blocked `wait` out of its sleep.
//!
//! Everything is level-triggered and single-consumer by design; the
//! Sorrento mesh runs exactly one loop thread per node, which is the
//! entire point of the exercise (see `sorrento-net/src/tcp.rs`).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered descriptor and
/// handed back with every event it produces.
pub type Token = u64;

/// Which readiness conditions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Fire when the descriptor is readable (or has a pending error /
    /// hangup, which always fires regardless).
    pub readable: bool,
    /// Fire when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Writable only.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Readable and writable.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: Token,
    /// Readable now (includes EOF: a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup condition; the owner should read until the
    /// error surfaces and drop the descriptor.
    pub error: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw epoll(7) bindings. Declared `extern "C"` against the libc
    //! that `std` links; no new dependency.

    use super::{Event, Interest, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// Kernel `struct epoll_event`. Packed on x86-64 (the kernel ABI),
    /// natural alignment elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// epoll-backed interest list.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 256] })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask_of(interest), data: token };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn add(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            // A null event pointer is fine on kernels >= 2.6.9.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) })
                .map(|_| ())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round up so a 100µs timeout does not busy-spin at 0ms.
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32
                    + if d.subsec_nanos() % 1_000_000 != 0 { 1 } else { 0 },
            };
            let n = loop {
                let r = unsafe {
                    epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, timeout_ms)
                };
                if r >= 0 {
                    break r as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            if n == self.buf.len() {
                // Saturated the event buffer: grow so a C10K burst is
                // drained in few wait calls.
                self.buf.resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }

    /// eventfd-backed waker.
    pub struct Waker {
        fd: RawFd,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(Waker { fd })
        }

        pub fn fd(&self) -> RawFd {
            self.fd
        }

        pub fn wake(&self) {
            let one: u64 = 1;
            // A full eventfd counter still leaves the fd readable, so a
            // failed write loses nothing.
            unsafe {
                write(self.fd, &one as *const u64 as *const u8, 8);
            }
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe {
                read(self.fd, buf.as_mut_ptr(), 8);
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable fallback: the same stateful-interest API emulated over
    //! POSIX `poll(2)`, with a self-pipe waker. O(n) per wait, which is
    //! fine for the non-Linux dev loop; production targets are Linux.

    use super::{Event, Interest, Token};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// poll(2)-backed interest list.
    pub struct Poller {
        registered: HashMap<RawFd, (Token, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: HashMap::new() })
        }

        pub fn add(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32
                    + if d.subsec_nanos() % 1_000_000 != 0 { 1 } else { 0 },
            };
            loop {
                let r = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if r >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let (token, _) = self.registered[&pfd.fd];
                events.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    /// Self-pipe waker.
    pub struct Waker {
        rd: RawFd,
        wr: RawFd,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            // F_SETFL = 4, O_NONBLOCK = 4 on the BSDs/macOS.
            unsafe {
                fcntl(fds[0], 4, 4);
                fcntl(fds[1], 4, 4);
            }
            Ok(Waker { rd: fds[0], wr: fds[1] })
        }

        pub fn fd(&self) -> RawFd {
            self.rd
        }

        pub fn wake(&self) {
            let one = [1u8];
            unsafe {
                write(self.wr, one.as_ptr(), 1);
            }
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            while unsafe { read(self.rd, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                close(self.rd);
                close(self.wr);
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!("the epoll shim supports Unix targets only (epoll on Linux, poll(2) elsewhere)");

/// A stateful readiness-interest list: `epoll(7)` on Linux, emulated
/// over `poll(2)` on other Unix targets. Level-triggered.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Create an empty interest list.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { inner: sys::Poller::new()? })
    }

    /// Register `fd` with `token` and `interest`. The token comes back
    /// verbatim in every [`Event`] the descriptor produces.
    pub fn add(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.add(fd, token, interest)
    }

    /// Replace the interest (and token) of an already-registered `fd`.
    pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Drop a registration. The caller must do this before closing the
    /// descriptor on the poll(2) fallback; on Linux the kernel also
    /// cleans up on close.
    pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.remove(fd)
    }

    /// Block until at least one registered descriptor is ready or the
    /// timeout elapses (`None` = forever), filling `events`. An empty
    /// `events` after return means the timeout fired. Sub-millisecond
    /// timeouts are rounded *up*, so a short timeout never busy-spins.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(events, timeout)
    }
}

/// Wakes a [`Poller::wait`] from another thread: register [`Waker::fd`]
/// for reads, call [`Waker::wake`] anywhere, and have the loop
/// [`Waker::drain`] it when its token fires.
pub struct Waker {
    inner: sys::Waker,
}

impl Waker {
    /// Create a waker (an `eventfd` on Linux, a nonblocking self-pipe
    /// elsewhere).
    pub fn new() -> io::Result<Waker> {
        Ok(Waker { inner: sys::Waker::new()? })
    }

    /// The readable descriptor to register with the poller.
    pub fn fd(&self) -> RawFd {
        self.inner.fd()
    }

    /// Make the poller's next (or current) `wait` return. Cheap, signal
    /// safe, and never blocks; coalesces with earlier pending wakes.
    pub fn wake(&self) {
        self.inner.wake()
    }

    /// Consume pending wake signals so the next `wait` can sleep.
    pub fn drain(&self) {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), 7, Interest::READABLE).unwrap();
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
        });
        let mut events = Vec::new();
        let t0 = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "wait did not wake promptly");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        // Drained: the next wait times out instead of spinning.
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.is_empty());
        t.join().unwrap();
    }

    #[test]
    fn socket_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::READABLE).unwrap();
        let mut events = Vec::new();

        // Nothing to read yet.
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.is_empty());

        client.write_all(b"hi").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 2);

        // Level-triggered writability: an idle socket reports writable
        // for as long as we subscribe to it.
        poller.modify(server.as_raw_fd(), 2, Interest::BOTH).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));

        // Peer hangup surfaces as readable (EOF).
        drop(client);
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        poller.remove(server.as_raw_fd()).unwrap();
    }
}
