//! Hermetic, dependency-free stand-in for `criterion`.
//!
//! Provides the API subset the workspace's microbenchmarks use
//! (`Criterion::bench_function`, `Bencher::iter` / `iter_batched`,
//! `BatchSize`, `criterion_group!`, `criterion_main!`, `black_box`)
//! backed by a plain wall-clock loop: calibrate an iteration count to
//! roughly [`TARGET`] per benchmark, then report mean ns/iter. No
//! statistics, plots, or baselines — just numbers on stdout.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
pub const TARGET: Duration = Duration::from_millis(300);

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How per-iteration setup outputs are batched (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh `setup()` outputs; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh driver.
    pub fn new() -> Criterion {
        Criterion {}
    }

    /// Run one named benchmark: calibrate, measure, print ns/iter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibration pass: one iteration to estimate cost.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per = b.elapsed.max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / per.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("bench {name:<44} {ns:>14.1} ns/iter  ({} iters)", b.iters);
        self
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::new();
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + 1));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| { v.len() }, BatchSize::SmallInput)
        });
        runs += 1;
        assert_eq!(runs, 1);
    }
}
