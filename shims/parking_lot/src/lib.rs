//! Hermetic, dependency-free stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives behind parking_lot's
//! non-poisoning API (guards returned directly, not `Result`s). A
//! poisoned std lock — a panic while held — just hands back the inner
//! guard, matching parking_lot's "no poisoning" semantics.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A reader–writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `t`.
    pub fn new(t: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Exclusive mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `t`.
    pub fn new(t: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn read_survives_writer_panic() {
        let l = std::sync::Arc::new(RwLock::new(1));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 1);
    }
}
