//! Hermetic stand-in for the `bytes` crate: the [`Bytes`] API subset
//! Sorrento uses. A `Bytes` is an `Arc<Vec<u8>>` plus a sub-range, so
//! cloning and slicing are O(1) reference bumps and `From<Vec<u8>>`
//! takes ownership of the allocation without copying — a payload
//! received off the wire can be handed to the store untouched.
//!
//! Differences from the real crate: no `BytesMut`, no zero-copy
//! `from_static` (statics are copied once on construction), and no
//! `try_*` fallible API. Everything implemented here matches the real
//! crate's observable behavior so a future swap to the crates.io
//! package is a `Cargo.toml` edit.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

fn empty_arc() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

impl Bytes {
    /// An empty `Bytes` (no allocation after the first call).
    pub fn new() -> Bytes {
        Bytes { data: empty_arc(), start: 0, end: 0 }
    }

    /// Copy a slice into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Bytes from a static slice (copied once, unlike the real crate).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation; O(1).
    ///
    /// # Panics
    /// If the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n.checked_add(1).expect("range start overflow"),
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n.checked_add(1).expect("range end overflow"),
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range inverted: {begin} > {end}");
        assert!(end <= len, "slice range {end} out of bounds for length {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Split off the bytes from `at` onward; `self` keeps `[0, at)`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Split off the bytes before `at`; `self` keeps `[at, len)`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of the allocation — no copy.
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Bytes {
        Bytes::copy_from_slice(&a)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Match the real crate: byte-string literal form.
        write!(f, "b\"")?;
        for &b in self.iter() {
            if b == b'"' || b == b'\\' {
                write!(f, "\\{}", b as char)?;
            } else if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_does_not_copy() {
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), ptr);
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert!(Arc::ptr_eq(&b.data, &mid.data));
        let tail = mid.slice(2..);
        assert_eq!(&tail[..], &[4]);
    }

    #[test]
    fn split_off_and_to() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let tail = b.split_off(2);
        assert_eq!(&b[..], &[1, 2]);
        assert_eq!(&tail[..], &[3, 4]);
        let mut c = Bytes::from(vec![9u8, 8, 7]);
        let head = c.split_to(1);
        assert_eq!(&head[..], &[9]);
        assert_eq!(&c[..], &[8, 7]);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::new(), Bytes::from(Vec::new()));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"abc"), b"abc"[..]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(..3);
    }
}
