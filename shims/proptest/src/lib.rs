//! Hermetic, dependency-free stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate
//! re-implements the strategy/macro subset the workspace's property
//! tests use: `proptest! { fn f(x in strategy) {...} }`, ranges, tuples,
//! `Just`, `prop_map`, `prop_oneof!` (weighted and unweighted),
//! `prop::collection::{vec, btree_set}`, `prop::option::of`,
//! `any::<T>()`, `prop::sample::Index`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (deterministic across runs) and failures do **not**
//! shrink — the failing case's panic message is the whole story.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::marker::PhantomData;

use rand::prelude::*;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<W, F: Fn(Self::Value) -> W>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy mapped through a function (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
    type Value = W;
    fn generate(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Weighted union of same-valued strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut draw = rng.gen_range(0..total.max(1));
        for (w, s) in &self.arms {
            if draw < *w {
                return s.generate(rng);
            }
            draw -= w;
        }
        self.arms.last().unwrap().1.generate(rng)
    }
}

/// Types with a canonical "uniform-ish" strategy, for [`any`].
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

/// Strategy for any [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Run-count configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Sub-strategies namespaced as in real proptest (`prop::collection` …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Acceptable size arguments for collection strategies.
        pub trait SizeBound {
            /// Draw a concrete size.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeBound for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeBound for core::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeBound for core::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        pub struct VecStrategy<S, Z> {
            elem: S,
            size: Z,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy, Z: SizeBound>(elem: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy, Z: SizeBound> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<S::Value>`.
        pub struct BTreeSetStrategy<S, Z> {
            elem: S,
            size: Z,
        }

        /// `prop::collection::btree_set(element, size)`. Best-effort: if
        /// the element domain is too small to reach the drawn size, the
        /// set is returned at whatever size 100·n attempts produced.
        pub fn btree_set<S, Z>(elem: S, size: Z) -> BTreeSetStrategy<S, Z>
        where
            S: Strategy,
            S::Value: Ord,
            Z: SizeBound,
        {
            BTreeSetStrategy { elem, size }
        }

        impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
        where
            S: Strategy,
            S::Value: Ord,
            Z: SizeBound,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                let mut out = BTreeSet::new();
                let mut attempts = 0usize;
                while out.len() < n && attempts < n.saturating_mul(100).max(100) {
                    out.insert(self.elem.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::*;

        /// Strategy for `Option<S::Value>` (see [`of`]).
        pub struct OptionStrategy<S>(S);

        /// `prop::option::of(inner)`: `None` one time in four.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.gen_range(0..4u32) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::*;

        /// An index into a slice of yet-unknown length.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(usize);

        impl Index {
            /// Resolve against a concrete length (`len > 0`).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.gen())
            }
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property test (no shrinking; panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (`w => strategy`) or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((($w) as u32, $crate::Strategy::boxed($s))),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $crate::Strategy::boxed($s))),+])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running `cases` deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (@fns ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            use $crate::Strategy as _;
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng: $crate::TestRng =
                ::rand::SeedableRng::seed_from_u64($crate::seed_for(stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = ($strat).generate(&mut rng);)*
                $body
            }
        }
    )*};
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Kind {
        A,
        B(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1u64..10, pair in (0u32..4, 5usize..6)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1, 5);
        }

        #[test]
        fn collections(v in prop::collection::vec(any::<u8>(), 0..8),
                       s in prop::collection::btree_set(0usize..64, 2..10),
                       o in prop::option::of(1u32..3),
                       ix in any::<prop::sample::Index>()) {
            prop_assert!(v.len() < 8);
            prop_assert!(s.len() >= 2 && s.len() < 10);
            if let Some(o) = o { prop_assert!(o == 1 || o == 2); }
            prop_assert!(ix.index(7) < 7);
        }

        #[test]
        fn oneof_and_map(k in prop_oneof![
            3 => Just(Kind::A),
            1 => (10u64..20).prop_map(Kind::B),
        ]) {
            match k {
                Kind::A => {}
                Kind::B(x) => prop_assert!((10..20).contains(&x)),
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a: TestRng = rand::SeedableRng::seed_from_u64(seed_for("t"));
        let mut b: TestRng = rand::SeedableRng::seed_from_u64(seed_for("t"));
        let s = prop::collection::vec(0u64..100, 1..9);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    use crate::{seed_for, Strategy, TestRng};
}
