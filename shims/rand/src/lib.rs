//! Hermetic, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::SmallRng`] (a xoshiro256++ generator), [`SeedableRng`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`, `fill`)
//! and [`seq::SliceRandom::choose`]. Everything is deterministic from
//! the seed, which is all the simulator requires; no claims are made
//! about statistical quality beyond "good enough for placement jitter".

#![warn(missing_docs)]

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (expanded via SplitMix64, like upstream).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (see [`Standard`] impls).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// A uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard.sample(self);
        u < p
    }

    /// Fill a slice with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<T: RngCore> Rng for T {}

/// Marker distribution producing "uniform over the whole domain".
pub struct Standard;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` via Lemire-style widening multiply
/// (without the rejection step; bias is ≪ 2⁻³² for sim-sized spans).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> SmallRng {
            // SplitMix64 expansion, as upstream rand does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = r.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = SmallRng::seed_from_u64(2);
        let xs = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut r).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let mut ys = vec![1, 2, 3, 4, 5, 6, 7, 8];
        ys.shuffle(&mut r);
        let mut sorted = ys.clone();
        sorted.sort();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
